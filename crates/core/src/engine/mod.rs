//! The cluster engine: nodes, cores, NICs, drivers, processes, and the
//! deterministic event loop tying them together.
//!
//! One [`Cluster`] is one experiment: a set of nodes on a fabric, each with
//! its own memory subsystem ([`simmem::Memory`]), cores
//! ([`simcore::CpuCore`]), I/OAT engine, Open-MX driver and endpoints.
//! Applications implement [`Process`] and interact through [`Ctx`] —
//! `malloc`/`free`, `isend`/`irecv`, `compute` — while the engine charges
//! every cost (system calls, pinning chunks, per-frame bottom-half work,
//! memory copies, wire time) to the right resource at the right instant.
//!
//! The event loop is strictly deterministic: stable event ordering, seeded
//! RNG, `BTreeMap` state tables. Running the same configuration twice
//! produces byte-identical traces.

mod ctx;
mod handlers;
mod rto;
mod xfer;

pub use ctx::Ctx;

use simcore::{
    Counters, CpuCore, EventId, EventQueue, Priority, SimDuration, SimRng, SimTime, Work as CpuWork,
};
use simmem::{AsId, Memory, SimHeap};
use simnet::{IoatEngine, Network, NodeId, TxOutcome};

use crate::cache::RegionCache;
use crate::config::OpenMxConfig;
use crate::driver::{Driver, RegionId};
use crate::endpoint::{Endpoint, EndpointAddr, RequestId};
use crate::obs::tracer::DEFAULT_CAPACITY;
use crate::obs::{CacheStats, FaultKind, Metrics, RetransKind, TraceEvent, TraceRecord, Tracer};
use crate::wire::{Frame, MsgId, PullId, WireMsg, XferId};
use rto::RttEstimator;
use xfer::XferTables;

/// Identifies a simulated process (rank).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// Per-request control over overlapped pinning — the paper's §5 proposal
/// to "only enable decoupled/overlapped pinning for blocking operations":
/// a blocking `MPI_Send` gains from overlap (the caller waits anyway),
/// while an overlap-aware application computing concurrently may prefer
/// the simple synchronous path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapHint {
    /// Follow the configured [`PinningMode`](crate::PinningMode).
    #[default]
    Auto,
    /// Overlap this request's pinning even in a non-overlapping mode
    /// (cache behaviour still follows the mode).
    Force,
    /// Pin synchronously before the initiating message for this request.
    Disable,
}

impl OverlapHint {
    /// Resolve against the mode's default.
    pub fn resolve(self, mode_overlaps: bool) -> bool {
        match self {
            OverlapHint::Auto => mode_overlaps,
            OverlapHint::Force => true,
            OverlapHint::Disable => false,
        }
    }
}

/// Events delivered to a [`Process`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// A send request completed (buffer reusable).
    SendDone(RequestId),
    /// A receive completed; the payload length actually delivered.
    RecvDone(RequestId, u64),
    /// A request aborted (e.g. pinning failed on an invalid region).
    Failed(RequestId, &'static str),
    /// A `compute` phase finished (token echoes the caller's).
    ComputeDone(u64),
}

/// A simulated application process.
///
/// Implementations are state machines: `start` runs once at time zero;
/// `on_event` runs at each request/compute completion. All interaction
/// goes through the [`Ctx`].
pub trait Process {
    /// Called once when the simulation starts.
    fn start(&mut self, ctx: &mut Ctx<'_>);
    /// Called on each completion event for this process.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: AppEvent);
}

/// Engine events.
pub(crate) enum Event {
    /// A frame reached its destination NIC (raise interrupt).
    FrameArrival(Frame),
    /// The running work chunk on (node, core) finished.
    CoreDone { node: usize, core: usize },
    /// An I/OAT copy finished on `node`.
    IoatDone { node: usize, token: u64 },
    /// A protocol timer fired.
    Timer(TimerToken),
}

/// Timer identities (payload of [`Event::Timer`]).
#[derive(Clone, Copy, Debug)]
pub(crate) enum TimerToken {
    /// Sender rendezvous retransmit.
    RndvRetrans(MsgId),
    /// Sender eager retransmit.
    EagerRetrans(MsgId),
    /// Receiver pull stall (lost replies / lost requests).
    PullStall(PullId),
    /// Receiver notify retransmit.
    NotifyRetrans(MsgId),
    /// Deferred-unpin flush epoch close on a node: drain the driver's
    /// coalesced invalidation queue in one batch.
    NotifierEpoch(usize),
}

/// CPU work payloads.
pub(crate) enum Work {
    /// System-call half of an application call.
    Syscall { proc: ProcId, action: SyscallAction },
    /// Pin the next chunk of a region (on-demand pinning).
    PinChunk { node: usize, region: RegionId },
    /// Unpin (and maybe undeclare) a region at transfer end. `owner`
    /// guards against slot reuse: a crash reap may free the region id
    /// while this work is queued, and a recycled id must not be unpinned
    /// under its new owner.
    UnpinRegion {
        node: usize,
        region: RegionId,
        owner: ProcId,
        undeclare: bool,
    },
    /// Bottom-half processing of one received frame.
    BhFrame(Frame),
    /// Application compute phase (one bounded slice; long phases are
    /// chunked so kernel work can interleave, like timer preemption).
    Compute {
        proc: ProcId,
        token: u64,
        remaining: SimDuration,
    },
    /// Sender-side eager copy into the static pinned buffer + tx setup.
    EagerCopyOut {
        owner: ProcId,
        msg: MsgId,
        req: RequestId,
    },
    /// Receiver-side copy from the eager ring to the user buffer.
    EagerDeliver { owner: ProcId, msg: MsgId },
    /// Intra-node send copy (shared memory path).
    ShmSend {
        owner: ProcId,
        msg: MsgId,
        req: RequestId,
    },
    /// Intra-node receive copy.
    ShmDeliver { owner: ProcId, msg: MsgId },
    /// One bounded slice of a longer work item; `then` fires when the
    /// whole chain has been charged (keeps long copies preemptible at
    /// slice granularity).
    Slice {
        then: Box<Work>,
        remaining: SimDuration,
    },
}

/// Deferred syscall bodies.
pub(crate) enum SyscallAction {
    Isend {
        req: RequestId,
        peer: ProcId,
        match_info: u64,
        segments: Vec<crate::region::Segment>,
        hint: OverlapHint,
    },
    Irecv {
        req: RequestId,
        match_info: u64,
        mask: u64,
        addr: simmem::VirtAddr,
        len: u64,
        hint: OverlapHint,
    },
}

/// One simulated host.
pub(crate) struct Node {
    pub mem: Memory,
    pub cores: Vec<CpuCore<Work>>,
    pub ioat: IoatEngine,
    pub driver: Driver,
    pub counters: Counters,
    /// Core the NIC's interrupt bottom half is bound to.
    pub bh_core: usize,
    /// A [`TimerToken::NotifierEpoch`] is pending for this node. Armed
    /// only when an invalidation defers while no epoch is open — never
    /// re-armed from its own firing, so an idle node stays quiescent.
    pub epoch_armed: bool,
}

/// One simulated process (rank) and its kernel-side identity.
pub(crate) struct ProcSlot {
    pub node: usize,
    pub core: usize,
    pub space: AsId,
    pub heap: SimHeap,
    pub endpoint: Endpoint,
    pub cache: RegionCache,
    pub app: Option<Box<dyn Process>>,
    pub stopped: bool,
    /// Crash/restart cycle counter; stamped into every frame the process
    /// sends so stale-incarnation traffic is fenced at arrival.
    pub incarnation: u32,
    /// The process is dead (crashed, not yet restarted): its endpoint is
    /// fenced and no application events are delivered.
    pub crashed: bool,
}

/// The simulation engine. See the module docs.
pub struct Cluster {
    pub(crate) cfg: OpenMxConfig,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) net: Network,
    pub(crate) nodes: Vec<Node>,
    pub(crate) procs: Vec<ProcSlot>,
    pub(crate) xfers: XferTables,
    pub(crate) next_msg: u64,
    pub(crate) next_pull: u64,
    pub(crate) next_xfer: u64,
    pub(crate) next_req: u64,
    pub(crate) next_ioat_token: u64,
    pub(crate) counters: Counters,
    pub(crate) tracer: Tracer,
    pub(crate) metrics: Metrics,
    pub(crate) now: SimTime,
    /// `start` callbacks have run (they run exactly once, whether the
    /// cluster is driven by [`Cluster::run`] or stepped externally).
    pub(crate) started: bool,
    /// Fabric round-trip estimator feeding adaptive retransmission.
    pub(crate) rtt: RttEstimator,
    /// Dedicated stream for retransmission-timeout jitter (keeps backoff
    /// decisions independent of the fabric's loss draws).
    retrans_rng: SimRng,
}

impl Cluster {
    /// Maximum uninterrupted compute slice (the scheduler tick).
    pub(crate) const COMPUTE_SLICE: SimDuration = SimDuration::from_micros(100);

    /// Build a cluster of `node_count` hosts with the given configuration.
    pub fn new(cfg: OpenMxConfig, node_count: usize) -> Self {
        assert!(node_count >= 1);
        assert!(cfg.cores_per_node >= 1);
        cfg.validate().expect("invalid OpenMxConfig");
        let rng = SimRng::new(cfg.seed);
        let net = Network::new(node_count, cfg.net.clone(), rng.derive_stream("net"));
        let nodes = (0..node_count)
            .map(|_| Node {
                mem: Memory::new(cfg.frames_per_node, cfg.swap_per_node),
                cores: (0..cfg.cores_per_node).map(|_| CpuCore::new()).collect(),
                ioat: IoatEngine::default_chipset(),
                driver: {
                    let mut d = Driver::new(cfg.pinned_pages_limit);
                    d.set_quota(cfg.pin_quota);
                    d
                },
                counters: Counters::new(),
                bh_core: 0,
                epoch_armed: false,
            })
            .collect();
        Cluster {
            cfg,
            queue: EventQueue::new(),
            net,
            nodes,
            procs: Vec::new(),
            xfers: XferTables::default(),
            next_msg: 0,
            next_pull: 0,
            next_xfer: 0,
            next_req: 0,
            next_ioat_token: 0,
            counters: Counters::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::new(),
            now: SimTime::ZERO,
            started: false,
            rtt: RttEstimator::default(),
            retrans_rng: rng.derive_stream("retrans"),
        }
    }

    /// Add a process on `node`. Its endpoint opens immediately: the driver
    /// attaches an MMU notifier to the new address space (if enabled).
    pub fn add_process(&mut self, node: usize, app: Box<dyn Process>) -> ProcId {
        let procs_on_node = self.procs.iter().filter(|p| p.node == node).count();
        let n = &mut self.nodes[node];
        let space = n.mem.create_space();
        if self.cfg.use_mmu_notifiers {
            n.mem.register_notifier(space).expect("fresh space");
        }
        let ncores = n.cores.len();
        let core = if self.cfg.colocate_with_bh || ncores == 1 {
            n.bh_core
        } else {
            1 + procs_on_node % (ncores - 1)
        };
        let slot = ProcSlot {
            node,
            core,
            space,
            heap: SimHeap::new(space),
            endpoint: Endpoint::new(),
            cache: RegionCache::new(if self.cfg.pinning.caches() {
                self.cfg.cache_capacity
            } else {
                0
            }),
            app: Some(app),
            stopped: false,
            incarnation: 0,
            crashed: false,
        };
        self.procs.push(slot);
        ProcId(self.procs.len() as u32 - 1)
    }

    /// Start recording trace events into a default-capacity ring buffer
    /// (see [`crate::obs::tracer::DEFAULT_CAPACITY`]).
    pub fn enable_trace(&mut self) {
        self.tracer = Tracer::enabled(DEFAULT_CAPACITY);
    }

    /// Start recording trace events into a ring holding `capacity` records.
    pub fn enable_trace_with_capacity(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// The trace ring buffer (empty and disabled unless
    /// [`Cluster::enable_trace`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Latency metrics recorded so far (always on).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Run every process's `start` callback. Idempotent: the callbacks
    /// fire exactly once, on the first `start`/`run`/`step_until` call.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for p in 0..self.procs.len() {
            if self.procs[p].crashed {
                continue;
            }
            let proc = ProcId(p as u32);
            let mut app = self.procs[p].app.take().expect("app present");
            let mut ctx = Ctx::new(self, proc);
            app.start(&mut ctx);
            self.procs[p].app = Some(app);
        }
    }

    /// Run: start every process (first call only), then drain events until
    /// quiescence or `deadline`. An event scheduled past the deadline stays
    /// queued — earlier revisions popped and *discarded* it, silently
    /// dropping one event from any continuation. Returns the final
    /// simulated time.
    pub fn run(&mut self, deadline: Option<SimTime>) -> SimTime {
        self.start();
        match deadline {
            None => {
                while let Some((t, ev)) = self.queue.pop() {
                    self.now = t;
                    self.dispatch(ev);
                }
            }
            Some(d) => {
                while let Some(t) = self.queue.peek_time() {
                    if t > d {
                        self.now = d;
                        break;
                    }
                    let (t, ev) = self.queue.pop().expect("peeked event");
                    self.now = t;
                    self.dispatch(ev);
                }
            }
        }
        self.now
    }

    /// Dispatch every event up to and including `deadline`, then advance
    /// the clock to `deadline` exactly. Later events stay queued, so an
    /// external driver (the `simtest` explorer) can interleave its own
    /// actions — posting transfers, mutating address spaces — between
    /// steps and observe invariants at a quiescent instant. Returns how
    /// many events were dispatched.
    pub fn step_until(&mut self, deadline: SimTime) -> usize {
        self.start();
        let mut dispatched = 0usize;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event");
            self.now = t;
            self.dispatch(ev);
            dispatched += 1;
        }
        if deadline > self.now {
            self.now = deadline;
        }
        dispatched
    }

    /// Timestamp of the next pending event, if any — `None` means the
    /// simulation is quiescent.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run a closure against a process's [`Ctx`] from outside the event
    /// loop — the entry point for external schedule drivers: post
    /// sends/receives, write or read buffers, stop the process. Whatever
    /// the call schedules runs on the next `step_until`/`run`.
    pub fn drive<R>(&mut self, proc: ProcId, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut ctx = Ctx::new(self, proc);
        f(&mut ctx)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of processes.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Global engine counters (merged with per-node counters).
    pub fn counters(&self) -> Counters {
        let mut all = self.counters.clone();
        for n in &self.nodes {
            all.merge(&n.counters);
        }
        all
    }

    /// Per-node counters.
    pub fn node_counters(&self, node: usize) -> &Counters {
        &self.nodes[node].counters
    }

    /// Region cache hit/miss stats of one process.
    pub fn cache_stats(&self, proc: ProcId) -> CacheStats {
        self.procs[proc.0 as usize].cache.stats()
    }

    /// Fabric statistics.
    pub fn net_stats(&self) -> simnet::NetStats {
        self.net.stats()
    }

    /// Peak pages simultaneously pinned on `node`.
    pub fn pinned_peak(&self, node: usize) -> usize {
        self.nodes[node].mem.frames().pinned_peak()
    }

    /// Read a process's memory after (or during) a run — for result
    /// verification by tests and harnesses.
    pub fn read_proc(&mut self, proc: ProcId, addr: simmem::VirtAddr, len: u64) -> Vec<u8> {
        let idx = proc.0 as usize;
        let node = self.procs[idx].node;
        let space = self.procs[idx].space;
        let mut buf = vec![0u8; len as usize];
        self.nodes[node]
            .mem
            .read(space, addr, &mut buf)
            .expect("read_proc fault");
        buf
    }

    /// The node a process runs on.
    pub fn node_of(&self, proc: ProcId) -> usize {
        self.procs[proc.0 as usize].node
    }

    // ---- harness introspection (invariant oracles) -------------------

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The kernel-side driver of `node` (read-only introspection).
    pub fn driver(&self, node: usize) -> &Driver {
        &self.nodes[node].driver
    }

    /// The memory subsystem of `node` (read-only introspection).
    pub fn memory(&self, node: usize) -> &Memory {
        &self.nodes[node].mem
    }

    /// Mutable driver access — fault-injection hook for test harnesses
    /// that deliberately corrupt kernel state (e.g. forget a stale
    /// watermark) to prove their invariant oracle catches it. Not for
    /// applications.
    pub fn driver_mut(&mut self, node: usize) -> &mut Driver {
        &mut self.nodes[node].driver
    }

    /// Mutable memory access — fault-injection hook for test harnesses
    /// that deliberately corrupt kernel state (e.g. leak a pin) to prove
    /// their invariant oracle catches it. Not for applications.
    pub fn memory_mut(&mut self, node: usize) -> &mut Memory {
        &mut self.nodes[node].mem
    }

    /// The address space backing a process.
    pub fn space_of(&self, proc: ProcId) -> AsId {
        self.procs[proc.0 as usize].space
    }

    /// Region descriptors currently held by a process's user-space cache,
    /// sorted by id.
    pub fn cached_region_ids(&self, proc: ProcId) -> Vec<RegionId> {
        self.procs[proc.0 as usize].cache.cached_ids()
    }

    /// In-flight transfer state entries across every protocol table —
    /// zero means every posted operation has fully drained.
    pub fn inflight_xfers(&self) -> usize {
        let x = &self.xfers;
        x.eager_tx.len()
            + x.eager_rx.len()
            + x.send.len()
            + x.recv.len()
            + x.notify_pending.len()
            + x.shm.len()
            + x.ioat.len()
            + x.pin_plans.len()
    }

    /// Live (non-cancelled) events still pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    // ---- harness VM churn (the hostile-application model) ------------
    //
    // These mutate a process's address space *from outside* — the moves a
    // real application (or the kernel) makes underneath an in-flight
    // transfer: unmap, remap, fork + COW, swap, migration. Each routes the
    // resulting MMU-notifier events into the node's driver exactly like
    // the in-engine paths do.

    /// Map `len` bytes of fresh zeroed pages in a process's space,
    /// bypassing its heap — harness buffers must be unmappable/remappable
    /// at fixed addresses without confusing malloc bookkeeping.
    pub fn vm_mmap(&mut self, proc: ProcId, len: u64) -> simmem::VirtAddr {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        self.nodes[node]
            .mem
            .mmap(space, len, simmem::Prot::ReadWrite)
            .expect("harness mmap")
    }

    /// Re-map a previously unmapped harness buffer at the same address.
    pub fn vm_mmap_at(
        &mut self,
        proc: ProcId,
        addr: simmem::VirtAddr,
        len: u64,
    ) -> Result<(), simmem::MemError> {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        self.nodes[node]
            .mem
            .mmap_at(space, addr, len, simmem::Prot::ReadWrite)
            .map(|_| ())
    }

    /// Unmap `[addr, addr+len)` in a process's space, firing MMU-notifier
    /// invalidations into the driver (the free-then-invalidate flow).
    pub fn vm_munmap(
        &mut self,
        proc: ProcId,
        addr: simmem::VirtAddr,
        len: u64,
    ) -> Result<(), simmem::MemError> {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        let events = self.nodes[node].mem.munmap(space, addr, len)?;
        self.dispatch_notifier_events(node, &events);
        Ok(())
    }

    /// Fork a process's address space (all pages go copy-on-write on both
    /// sides). Returns the child space id; destroy it with
    /// [`Cluster::vm_destroy_space`].
    pub fn vm_fork(&mut self, proc: ProcId) -> Result<AsId, simmem::MemError> {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        self.nodes[node].mem.fork_space(space)
    }

    /// Destroy a forked child space on `node`, dispatching its `Release`
    /// notifier event (if one was registered).
    pub fn vm_destroy_space(&mut self, node: usize, space: AsId) -> Result<(), simmem::MemError> {
        let events = self.nodes[node].mem.destroy_space(space)?;
        self.dispatch_notifier_events(node, &events);
        Ok(())
    }

    /// Swap out every resident, unpinned page of `[addr, addr+len)` in a
    /// process's space (pinned pages refuse, like the kernel's). Notifier
    /// events reach the driver. Returns pages actually swapped.
    pub fn vm_swap_out(&mut self, proc: ProcId, addr: simmem::VirtAddr, len: u64) -> usize {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        let vpns = self.nodes[node].mem.resident_vpns_in(space, addr, len);
        let mut swapped = 0usize;
        for vpn in vpns {
            match self.nodes[node].mem.swap_out(space, vpn) {
                Ok(events) => {
                    self.dispatch_notifier_events(node, &events);
                    swapped += 1;
                }
                Err(_) => continue, // pinned, or swap full — kernel moves on
            }
        }
        swapped
    }

    /// Fault the pages of `[addr, addr+len)` back in (a read touch per
    /// page, discarding the data).
    pub fn vm_swap_in(
        &mut self,
        proc: ProcId,
        addr: simmem::VirtAddr,
        len: u64,
    ) -> Result<(), simmem::MemError> {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        let mut buf = vec![0u8; len as usize];
        self.nodes[node].mem.read(space, addr, &mut buf)?;
        Ok(())
    }

    /// Migrate every resident, unpinned page of `[addr, addr+len)` to a
    /// different frame (compaction/NUMA model; pinned pages refuse).
    /// Returns pages actually migrated.
    pub fn vm_migrate(&mut self, proc: ProcId, addr: simmem::VirtAddr, len: u64) -> usize {
        let idx = proc.0 as usize;
        let (node, space) = (self.procs[idx].node, self.procs[idx].space);
        let vpns = self.nodes[node].mem.resident_vpns_in(space, addr, len);
        let mut moved = 0usize;
        for vpn in vpns {
            match self.nodes[node].mem.migrate(space, vpn) {
                Ok(events) => {
                    self.dispatch_notifier_events(node, &events);
                    moved += 1;
                }
                Err(_) => continue,
            }
        }
        moved
    }

    // ---- crash/restart fault domain ----------------------------------

    /// Crash a process at the current instant. Its endpoint closes (all
    /// queued matching state is dropped), every protocol-table entry it
    /// owned is torn down without completions — nobody is listening — and
    /// the kernel exit path reaps the dead tenant synchronously: all its
    /// regions are undeclared, their pages unpinned in one batch with
    /// exact ledger credit, its in-flight pin passes unwound, and its
    /// address space destroyed. Surviving peers are *not* notified; their
    /// transfers aimed at the dead endpoint discover the death through
    /// their retransmission watchdogs, which short-circuit to a clean
    /// `Failed` completion. Bring the process back with
    /// [`Cluster::restart_proc`].
    pub fn crash_proc(&mut self, proc: ProcId) {
        self.crash_proc_inner(proc, false);
    }

    /// Fault-injection variant of [`Cluster::crash_proc`]: the process is
    /// marked dead (its endpoint fences and its app falls silent) but the
    /// kernel-side reap is skipped wholesale — transfers stay parked in
    /// the tables and every pin the dead tenant owned leaks. Exists so
    /// harness mutation self-tests can prove an orphan-pin oracle fires.
    /// Not for applications.
    pub fn crash_proc_leaky_for_test(&mut self, proc: ProcId) {
        self.crash_proc_inner(proc, true);
    }

    fn crash_proc_inner(&mut self, proc: ProcId, leaky: bool) {
        let idx = proc.0 as usize;
        assert!(
            !self.procs[idx].crashed,
            "crash of already-crashed {proc:?}"
        );
        let node = self.procs[idx].node;
        let incarnation = self.procs[idx].incarnation;
        self.procs[idx].crashed = true;
        self.nodes[node].counters.bump("proc_crashes");
        if leaky {
            self.emit(
                node,
                Some(proc),
                TraceEvent::ProcCrash {
                    proc,
                    incarnation,
                    reaped_pages: 0,
                },
            );
            return;
        }
        self.reap_crashed_xfers(proc);
        // User-space state dies with the process: matching queues and the
        // region cache. (The cached descriptors themselves are reaped
        // below with everything else the dead tenant declared.)
        self.procs[idx].endpoint = Endpoint::new();
        self.procs[idx].cache = RegionCache::new(0);
        // Kernel exit path: reap every region the dead tenant owned (one
        // batched unpin per region, debited against its quota row before
        // the row is dropped), then tear down the address space. The reap
        // runs first so the teardown's Release notifier event finds no
        // remaining region to double-release.
        let reaped = {
            let n = &mut self.nodes[node];
            n.driver.teardown_proc(&mut n.mem, proc)
        };
        if reaped > 0 {
            self.nodes[node].counters.add("unpin_pages", reaped);
            self.nodes[node].counters.add("crash_reaped_pages", reaped);
        }
        let space = self.procs[idx].space;
        let events = self.nodes[node]
            .mem
            .destroy_space(space)
            .expect("crashed proc had a live space");
        self.dispatch_notifier_events(node, &events);
        self.emit(
            node,
            Some(proc),
            TraceEvent::ProcCrash {
                proc,
                incarnation,
                reaped_pages: reaped,
            },
        );
    }

    /// Restart a crashed process with a bumped incarnation: fresh address
    /// space (MMU notifier re-registered), heap, endpoint, region cache,
    /// and application. Pre-crash frames still in flight carry the old
    /// incarnation stamp and are fenced at arrival, on both sides. If the
    /// cluster is already running, the new application's `start` callback
    /// runs immediately.
    pub fn restart_proc(&mut self, proc: ProcId, app: Box<dyn Process>) {
        let idx = proc.0 as usize;
        assert!(self.procs[idx].crashed, "restart of live {proc:?}");
        let node = self.procs[idx].node;
        let cache_capacity = if self.cfg.pinning.caches() {
            self.cfg.cache_capacity
        } else {
            0
        };
        let n = &mut self.nodes[node];
        let space = n.mem.create_space();
        if self.cfg.use_mmu_notifiers {
            n.mem.register_notifier(space).expect("fresh space");
        }
        let slot = &mut self.procs[idx];
        slot.space = space;
        slot.heap = SimHeap::new(space);
        slot.endpoint = Endpoint::new();
        slot.cache = RegionCache::new(cache_capacity);
        slot.app = Some(app);
        slot.stopped = false;
        slot.crashed = false;
        slot.incarnation += 1;
        let incarnation = slot.incarnation;
        self.nodes[node].counters.bump("proc_restarts");
        self.emit(
            node,
            Some(proc),
            TraceEvent::ProcRestart { proc, incarnation },
        );
        if self.started {
            let mut app = self.procs[idx].app.take().expect("just installed");
            let mut ctx = Ctx::new(self, proc);
            app.start(&mut ctx);
            self.procs[idx].app = Some(app);
        }
    }

    /// True while `proc` is crashed (awaiting restart).
    pub fn is_crashed(&self, proc: ProcId) -> bool {
        self.procs[proc.0 as usize].crashed
    }

    /// Current incarnation of `proc` (0 until its first restart).
    pub fn incarnation_of(&self, proc: ProcId) -> u32 {
        self.procs[proc.0 as usize].incarnation
    }

    /// Tear down every protocol-table entry touching a dead process. The
    /// dead side is dropped without completions; live counterparts of
    /// *timerless* states (matched eager reassembly, shm rendezvous)
    /// fail immediately — everything with a watchdog keeps its entry and
    /// short-circuits when the timer fires.
    fn reap_crashed_xfers(&mut self, proc: ProcId) {
        let node = self.procs[proc.0 as usize].node;
        // Sender-side eager retransmission state.
        let dead: Vec<MsgId> = self
            .xfers
            .eager_tx
            .iter()
            .filter(|(_, t)| t.proc == proc)
            .map(|(k, _)| *k)
            .collect();
        for k in dead {
            let t = self.xfers.eager_tx.remove(&k).expect("listed");
            self.cancel_timer(t.timer);
        }
        // Matched eager reassembly: the dead side is dropped; a live
        // receiver mid-reassembly from the dead sender fails now — the
        // missing fragments will never arrive and no timer guards it.
        let dead: Vec<(MsgId, bool)> = self
            .xfers
            .eager_rx
            .iter()
            .filter(|(_, m)| m.proc == proc || m.rx.src.proc == proc)
            .map(|(k, m)| (*k, m.proc != proc))
            .collect();
        for (k, live_receiver) in dead {
            let m = self.xfers.eager_rx.remove(&k).expect("listed");
            if live_receiver {
                self.nodes[self.procs[m.proc.0 as usize].node]
                    .counters
                    .bump("requests_failed");
                self.notify_app(m.proc, AppEvent::Failed(m.req, "peer crashed"));
            }
        }
        // Rendezvous sender state.
        let dead: Vec<MsgId> = self
            .xfers
            .send
            .iter()
            .filter(|(_, x)| x.proc == proc)
            .map(|(k, _)| *k)
            .collect();
        for k in dead {
            let x = self.xfers.send.remove(&k).expect("listed");
            self.cancel_timer(x.rndv_timer);
        }
        // Receiver pull state.
        let dead: Vec<PullId> = self
            .xfers
            .recv
            .iter()
            .filter(|(_, x)| x.proc == proc)
            .map(|(k, _)| *k)
            .collect();
        for k in dead {
            let x = self.xfers.recv.remove(&k).expect("listed");
            self.xfers.recv_by_msg.remove(&x.msg);
            self.cancel_timer(x.stall_timer);
        }
        // Completion notifies awaiting their ack.
        let dead: Vec<MsgId> = self
            .xfers
            .notify_pending
            .iter()
            .filter(|(_, p)| p.proc == proc)
            .map(|(k, _)| *k)
            .collect();
        for k in dead {
            let p = self.xfers.notify_pending.remove(&k).expect("listed");
            self.cancel_timer(Some(p.timer));
        }
        // Intra-node messages touching the dead process on either side.
        // A live receiver already matched to a dead sender's parked copy
        // fails now (timerless); a live sender's queued copy-out finds
        // its entry gone and fails on its own core (see `on_shm_send`).
        let dead: Vec<MsgId> = self
            .xfers
            .shm
            .iter()
            .filter(|(_, s)| {
                s.src.proc == proc
                    || s.peer.proc == proc
                    || s.dst.is_some_and(|(_, dp, _, _)| dp == proc)
            })
            .map(|(k, _)| *k)
            .collect();
        for k in dead {
            let s = self.xfers.shm.remove(&k).expect("listed");
            if s.src.proc == proc {
                if let Some((req, dp, _, _)) = s.dst {
                    if dp != proc {
                        self.nodes[self.procs[dp.0 as usize].node]
                            .counters
                            .bump("requests_failed");
                        self.notify_app(dp, AppEvent::Failed(req, "peer crashed"));
                    }
                }
            }
        }
        // In-flight pin passes charged to the dead process; their regions
        // are undeclared by the driver reap right after this sweep.
        self.xfers.pin_plans.retain(|_, p| p.proc != proc);
        // Cache-eviction undeclare intents for regions the reap covers.
        let dead: Vec<(usize, u32)> = self
            .xfers
            .deferred_undeclare
            .iter()
            .filter(|(n, rid)| {
                *n == node
                    && self.nodes[*n]
                        .driver
                        .try_region(RegionId(*rid))
                        .is_some_and(|r| r.owner == proc)
            })
            .copied()
            .collect();
        for k in dead {
            self.xfers.deferred_undeclare.remove(&k);
        }
        // Fence every live endpoint's unexpected queue: parked messages
        // from the dead incarnation must never match a future receive.
        let mut purged = 0usize;
        for (i, slot) in self.procs.iter_mut().enumerate() {
            if i != proc.0 as usize {
                purged += slot.endpoint.purge_unexpected_from(proc);
            }
        }
        if purged > 0 {
            self.nodes[node]
                .counters
                .add("unexpected_purged", purged as u64);
        }
    }

    // ---- internal helpers shared by ctx & handlers -------------------

    pub(crate) fn alloc_req(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(self.next_req)
    }

    pub(crate) fn alloc_msg(&mut self) -> MsgId {
        self.next_msg += 1;
        MsgId(self.next_msg)
    }

    pub(crate) fn alloc_pull(&mut self) -> PullId {
        self.next_pull += 1;
        PullId(self.next_pull)
    }

    /// Allocate the causal-trace id carried by every wire message of one
    /// transfer (see [`XferId`]).
    pub(crate) fn alloc_xfer(&mut self) -> XferId {
        self.next_xfer += 1;
        XferId(self.next_xfer)
    }

    /// Record one trace event (free when tracing is off).
    pub(crate) fn emit(&mut self, node: usize, proc: Option<ProcId>, event: TraceEvent) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.record(TraceRecord {
            time: self.now,
            node,
            proc,
            event,
        });
        // Keep the metrics' view of ring overflow current so every
        // metrics snapshot is self-describing about trace truncation.
        self.metrics.set_dropped_events(self.tracer.dropped());
    }

    /// Submit CPU work on (node, core); schedules the completion event if
    /// the core was idle.
    pub(crate) fn submit_work(
        &mut self,
        node: usize,
        core: usize,
        priority: Priority,
        duration: SimDuration,
        work: Work,
    ) {
        let completion = self.nodes[node].cores[core].submit(
            self.now,
            CpuWork {
                duration,
                priority,
                payload: work,
            },
        );
        if let Some(c) = completion {
            self.queue.schedule(c.at, Event::CoreDone { node, core });
        }
    }

    /// Submit work on a process's application core at Task priority.
    pub(crate) fn submit_proc_work(&mut self, proc: ProcId, duration: SimDuration, work: Work) {
        let p = &self.procs[proc.0 as usize];
        let (node, core) = (p.node, p.core);
        self.submit_work(node, core, Priority::Task, duration, work);
    }

    /// Submit Task work on a process's core, sliced into bounded chunks
    /// so interrupts and kernel work interleave during long copies.
    pub(crate) fn submit_sliced_proc_work(
        &mut self,
        proc: ProcId,
        duration: SimDuration,
        work: Work,
    ) {
        if duration <= Self::COMPUTE_SLICE {
            self.submit_proc_work(proc, duration, work);
        } else {
            self.submit_proc_work(
                proc,
                Self::COMPUTE_SLICE,
                Work::Slice {
                    then: Box::new(work),
                    remaining: duration - Self::COMPUTE_SLICE,
                },
            );
        }
    }

    /// Submit kernel-context work (pinning, unpinning) on a process's
    /// core: ahead of queued user work, below the bottom half.
    pub(crate) fn submit_kernel_work(&mut self, proc: ProcId, duration: SimDuration, work: Work) {
        let p = &self.procs[proc.0 as usize];
        let (node, core) = (p.node, p.core);
        self.submit_work(node, core, Priority::Kernel, duration, work);
    }

    /// The retransmission timeout for a timer (re)arm. With adaptive
    /// retransmission off this is the configured fixed timeout; on, it is
    /// the RTT estimator's RTO (falling back to the fixed timeout before
    /// any sample) scaled by `backoff^attempt`, clamped to
    /// `[retransmit_min, retransmit_timeout]`, with deterministic jitter
    /// on top. Emits a [`TraceEvent::Backoff`] and feeds the `rto_applied`
    /// histogram so backoff decisions are observable.
    pub(crate) fn retrans_timeout(
        &mut self,
        node: usize,
        kind: RetransKind,
        id: u64,
        xfer: XferId,
        attempt: u32,
    ) -> SimDuration {
        let cfg_max = self.cfg.retransmit_timeout;
        if !self.cfg.adaptive_retransmit {
            return cfg_max;
        }
        let base = self.rtt.rto().unwrap_or(cfg_max);
        let exp = self.cfg.retransmit_backoff.powi(attempt.min(16) as i32);
        let scaled = (base.as_nanos() as f64 * exp).min(cfg_max.as_nanos() as f64) as u64;
        let clamped = scaled.max(self.cfg.retransmit_min.as_nanos());
        let jitter = 1.0 + self.cfg.retransmit_jitter * self.retrans_rng.unit_f64();
        let rto = SimDuration::from_nanos((clamped as f64 * jitter) as u64);
        self.metrics.rto_applied.record(rto);
        self.emit(
            node,
            None,
            TraceEvent::Backoff {
                kind,
                id,
                xfer,
                attempt,
                rto_nanos: rto.as_nanos(),
            },
        );
        rto
    }

    /// Hand a frame to the fabric; schedules its arrival — twice, when the
    /// fault layer duplicates it — or counts the drop (recovery is the
    /// protocol's problem).
    pub(crate) fn transmit(&mut self, frame: Frame) {
        let src_node = self.procs[frame.src.proc.0 as usize].node;
        let dst_node = self.procs[frame.dst.proc.0 as usize].node;
        assert_ne!(src_node, dst_node, "intra-node traffic uses the shm path");
        let payload = frame.msg.payload_len();
        match self.net.transmit(
            self.now,
            NodeId(src_node as u32),
            NodeId(dst_node as u32),
            payload,
        ) {
            TxOutcome::Delivered(d) => {
                if d.reordered {
                    self.nodes[src_node].counters.bump("net_frames_reordered");
                    self.metrics.record_fault_injected();
                    self.emit(
                        src_node,
                        None,
                        TraceEvent::FaultInjected {
                            kind: FaultKind::Reorder,
                        },
                    );
                }
                if let Some(at2) = d.duplicate_at {
                    self.nodes[src_node].counters.bump("net_frames_duplicated");
                    self.metrics.record_fault_injected();
                    self.emit(
                        src_node,
                        None,
                        TraceEvent::FaultInjected {
                            kind: FaultKind::Duplicate,
                        },
                    );
                    self.queue.schedule(at2, Event::FrameArrival(frame.clone()));
                }
                self.queue.schedule(d.at, Event::FrameArrival(frame));
            }
            TxOutcome::Dropped(reason) => {
                let (counter, fault) = match reason {
                    simnet::DropReason::RandomLoss => ("net_frames_lost", None),
                    simnet::DropReason::QueueOverflow => ("net_frames_overflowed", None),
                    simnet::DropReason::BurstLoss => {
                        ("net_frames_burst_lost", Some(FaultKind::BurstLoss))
                    }
                    simnet::DropReason::LinkDown => {
                        ("net_frames_link_down", Some(FaultKind::LinkDown))
                    }
                };
                self.nodes[src_node].counters.bump(counter);
                if let Some(kind) = fault {
                    self.metrics.record_fault_injected();
                    self.emit(src_node, None, TraceEvent::FaultInjected { kind });
                }
            }
        }
    }

    /// Arm a protocol timer.
    pub(crate) fn arm_timer(&mut self, after: SimDuration, token: TimerToken) -> EventId {
        self.queue.schedule(self.now + after, Event::Timer(token))
    }

    /// Disarm a timer if still pending.
    pub(crate) fn cancel_timer(&mut self, id: Option<EventId>) {
        if let Some(id) = id {
            self.queue.cancel(id);
        }
    }

    /// Deliver an application event, letting the process issue new calls.
    pub(crate) fn notify_app(&mut self, proc: ProcId, event: AppEvent) {
        let idx = proc.0 as usize;
        if self.procs[idx].stopped || self.procs[idx].crashed {
            return;
        }
        let mut app = self.procs[idx].app.take().expect("app present");
        let mut ctx = Ctx::new(self, proc);
        app.on_event(&mut ctx, event);
        self.procs[idx].app = Some(app);
    }

    /// Route MMU-notifier events to the node's driver (if notifiers are
    /// enabled) and restart pinning for any region a transfer still needs.
    pub(crate) fn dispatch_notifier_events(
        &mut self,
        node: usize,
        events: &[simmem::NotifierEvent],
    ) {
        if !self.cfg.use_mmu_notifiers {
            return;
        }
        let mut eager = Vec::new();
        let mut deferred = Vec::new();
        for ev in events {
            let release = ev.cause == simmem::InvalidateCause::Release;
            let n = &mut self.nodes[node];
            let hit = n.driver.handle_invalidate(&mut n.mem, ev);
            // One event may hit several regions (and most hit none):
            // count events and region hits separately.
            n.counters.bump("notifier_events");
            for (rid, pages) in hit {
                if release {
                    // Address-space teardown unpinned inside the event:
                    // there is no next use to defer for.
                    n.counters.bump("notifier_region_unpins");
                    n.counters.add("notifier_unpinned_pages", pages);
                    n.counters.add("unpin_pages", pages);
                    eager.push((rid, pages));
                } else {
                    // The unpin was parked in the deferred queue; the
                    // stale tail is already protocol-invisible.
                    n.counters.bump("notifier_deferred");
                    deferred.push((rid, pages));
                }
            }
        }
        for (rid, pages) in eager {
            self.emit(
                node,
                None,
                TraceEvent::NotifierInvalidate { region: rid, pages },
            );
            // In-use regions must repin: restart their pin plan.
            self.restart_pin_plan_if_needed(node, rid);
        }
        for (rid, pages) in deferred {
            self.metrics.record_notifier_deferred();
            self.emit(node, None, TraceEvent::NotifierDefer { region: rid, pages });
            self.restart_pin_plan_if_needed(node, rid);
        }
        // Open a flush epoch the first time something defers; the drain
        // at epoch close batches every hit accumulated until then.
        if self.nodes[node].driver.has_deferred() && !self.nodes[node].epoch_armed {
            self.nodes[node].epoch_armed = true;
            let epoch = self.cfg.notifier_epoch;
            self.arm_timer(epoch, TimerToken::NotifierEpoch(node));
        }
    }

    /// The endpoint address of a process, stamped with its *current*
    /// incarnation. Addresses stored in protocol state across a peer's
    /// crash keep the old stamp, which is exactly what lets the receive
    /// path fence pre-crash traffic.
    pub(crate) fn addr_of(&self, proc: ProcId) -> EndpointAddr {
        EndpointAddr {
            proc,
            incarnation: self.procs[proc.0 as usize].incarnation,
        }
    }

    /// True when the endpoint this address names no longer exists: the
    /// process is dead, or it restarted and the address carries a stale
    /// incarnation.
    pub(crate) fn endpoint_gone(&self, addr: EndpointAddr) -> bool {
        let s = &self.procs[addr.proc.0 as usize];
        s.crashed || s.incarnation != addr.incarnation
    }

    /// Frame payload capacity of the fabric.
    pub(crate) fn frame_payload(&self) -> u64 {
        simnet::frame::max_payload(self.cfg.net.mtu)
    }

    /// Build a control frame.
    pub(crate) fn frame(&self, src: ProcId, dst: EndpointAddr, msg: WireMsg) -> Frame {
        Frame {
            src: self.addr_of(src),
            dst,
            msg,
        }
    }
}
