//! The application-facing context: what a [`Process`](super::Process) can
//! do inside its callbacks.

use simcore::SimDuration;
use simmem::VirtAddr;

use super::{Cluster, OverlapHint, ProcId, SyscallAction, Work};
use crate::endpoint::RequestId;
use crate::region::Segment;

/// Handle given to application callbacks. All methods act *as* the
/// process: allocations land in its address space, communication costs
/// charge its core, request completions come back through
/// [`Process::on_event`](super::Process::on_event).
pub struct Ctx<'a> {
    cl: &'a mut Cluster,
    proc: ProcId,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(cl: &'a mut Cluster, proc: ProcId) -> Self {
        Ctx { cl, proc }
    }

    /// This process's id.
    pub fn me(&self) -> ProcId {
        self.proc
    }

    /// Total processes in the cluster.
    pub fn nprocs(&self) -> usize {
        self.cl.procs.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> simcore::SimTime {
        self.cl.now
    }

    /// Allocate `len` bytes in this process (malloc semantics: large
    /// blocks are mmap-backed and their `free` reaches the kernel).
    ///
    /// # Panics
    /// Panics on out-of-memory — workloads are sized to fit.
    pub fn malloc(&mut self, len: u64) -> VirtAddr {
        let idx = self.proc.0 as usize;
        let node = self.cl.procs[idx].node;
        let mem = &mut self.cl.nodes[node].mem;
        let heap = &mut self.cl.procs[idx].heap;
        heap.malloc(mem, len).expect("simulated heap OOM")
    }

    /// Free an allocation. For mmap-backed blocks this unmaps the pages —
    /// firing MMU-notifier invalidations into the driver, exactly the
    /// free-then-invalidate flow of the paper's Figure 3.
    pub fn free(&mut self, addr: VirtAddr) {
        let idx = self.proc.0 as usize;
        let node = self.cl.procs[idx].node;
        let events = {
            let mem = &mut self.cl.nodes[node].mem;
            let heap = &mut self.cl.procs[idx].heap;
            heap.free(mem, addr)
        };
        self.cl.dispatch_notifier_events(node, &events);
    }

    /// Write bytes into this process's memory (test/workload setup; no
    /// simulated time is charged). COW breaks fire notifier events.
    pub fn write_buf(&mut self, addr: VirtAddr, data: &[u8]) {
        let idx = self.proc.0 as usize;
        let node = self.cl.procs[idx].node;
        let space = self.cl.procs[idx].space;
        let events = self.cl.nodes[node]
            .mem
            .write(space, addr, data)
            .expect("write_buf fault");
        self.cl.dispatch_notifier_events(node, &events);
    }

    /// Read bytes back from this process's memory (verification; free).
    pub fn read_buf(&mut self, addr: VirtAddr, len: u64) -> Vec<u8> {
        let idx = self.proc.0 as usize;
        let node = self.cl.procs[idx].node;
        let space = self.cl.procs[idx].space;
        let mut buf = vec![0u8; len as usize];
        self.cl.nodes[node]
            .mem
            .read(space, addr, &mut buf)
            .expect("read_buf fault");
        buf
    }

    /// Post a non-blocking send of `[addr, addr+len)` to `peer` with
    /// matching key `match_info`. Completion arrives as
    /// [`AppEvent::SendDone`](super::AppEvent::SendDone).
    pub fn isend(&mut self, peer: ProcId, match_info: u64, addr: VirtAddr, len: u64) -> RequestId {
        self.isend_hinted(peer, match_info, addr, len, OverlapHint::Auto)
    }

    /// [`Ctx::isend`] with an explicit per-request overlap hint (§5: only
    /// blocking operations benefit from overlapped pinning).
    pub fn isend_hinted(
        &mut self,
        peer: ProcId,
        match_info: u64,
        addr: VirtAddr,
        len: u64,
        hint: OverlapHint,
    ) -> RequestId {
        self.isendv_hinted(peer, match_info, &[Segment { addr, len }], hint)
    }

    /// Vectorial (iovec-style) send: the message is the concatenation of
    /// `segments`, gathered by the driver — "regions may be vectorial"
    /// (paper §3.2). The receiver sees one contiguous message.
    pub fn isendv(&mut self, peer: ProcId, match_info: u64, segments: &[Segment]) -> RequestId {
        self.isendv_hinted(peer, match_info, segments, OverlapHint::Auto)
    }

    /// [`Ctx::isendv`] with an explicit overlap hint.
    pub fn isendv_hinted(
        &mut self,
        peer: ProcId,
        match_info: u64,
        segments: &[Segment],
        hint: OverlapHint,
    ) -> RequestId {
        let len: u64 = segments.iter().map(|s| s.len).sum();
        assert!(len > 0, "zero-length sends are not modelled");
        let segments = segments.to_vec();
        let req = self.cl.alloc_req();
        let caches = self.cl.cfg.pinning.caches();
        let cost = self.cl.cfg.profile.syscall
            + if caches {
                self.cl.cfg.profile.cache_lookup
            } else {
                SimDuration::ZERO
            };
        self.cl.submit_proc_work(
            self.proc,
            cost,
            Work::Syscall {
                proc: self.proc,
                action: SyscallAction::Isend {
                    req,
                    peer,
                    match_info,
                    segments,
                    hint,
                },
            },
        );
        req
    }

    /// Post a non-blocking receive into `[addr, addr+len)` matching
    /// `match_info` under `mask` (`!0` = exact). Completion arrives as
    /// [`AppEvent::RecvDone`](super::AppEvent::RecvDone) with the delivered
    /// length.
    pub fn irecv(&mut self, match_info: u64, mask: u64, addr: VirtAddr, len: u64) -> RequestId {
        self.irecv_hinted(match_info, mask, addr, len, OverlapHint::Auto)
    }

    /// [`Ctx::irecv`] with an explicit per-request overlap hint.
    pub fn irecv_hinted(
        &mut self,
        match_info: u64,
        mask: u64,
        addr: VirtAddr,
        len: u64,
        hint: OverlapHint,
    ) -> RequestId {
        assert!(len > 0, "zero-length receives are not modelled");
        let req = self.cl.alloc_req();
        let caches = self.cl.cfg.pinning.caches();
        let cost = self.cl.cfg.profile.syscall
            + if caches {
                self.cl.cfg.profile.cache_lookup
            } else {
                SimDuration::ZERO
            };
        self.cl.submit_proc_work(
            self.proc,
            cost,
            Work::Syscall {
                proc: self.proc,
                action: SyscallAction::Irecv {
                    req,
                    match_info,
                    mask,
                    addr,
                    len,
                    hint,
                },
            },
        );
        req
    }

    /// Burn `duration` of CPU on this process's core, then receive
    /// [`AppEvent::ComputeDone`](super::AppEvent::ComputeDone) with `token`.
    /// Long phases run as bounded slices so interrupts and kernel work
    /// interleave, as the scheduler's timer tick would allow.
    pub fn compute(&mut self, duration: SimDuration, token: u64) {
        let slice = Cluster::COMPUTE_SLICE.min(duration);
        self.cl.submit_proc_work(
            self.proc,
            slice,
            Work::Compute {
                proc: self.proc,
                token,
                remaining: duration - slice,
            },
        );
    }

    /// Drop an application-level marker into the trace (free; no-op when
    /// tracing is off). Shows up as an `app_mark` instant in the exports —
    /// useful to delimit phases of a workload on the timeline.
    pub fn annotate(&mut self, label: &'static str) {
        let node = self.cl.procs[self.proc.0 as usize].node;
        let proc = self.proc;
        self.cl
            .emit(node, Some(proc), crate::obs::TraceEvent::AppMark { label });
    }

    /// Mark this process finished. No further events are delivered to it.
    pub fn stop(&mut self) {
        self.cl.procs[self.proc.0 as usize].stopped = true;
    }
}
