//! Retransmission-timeout estimation (Jacobson/Karels, integer arithmetic).
//!
//! The engine feeds the estimator round-trip samples from exchanges it
//! already times — rendezvous → first pull request, eager → ack, pull
//! request → block completion — and asks for an RTO when (re)arming a
//! protocol timer. Karn's rule applies at the call sites: retransmitted
//! exchanges contribute no samples, since their ack could answer either
//! transmission.

use simcore::SimDuration;

/// Smoothed RTT + variance in the classic fixed-gain form:
/// `srtt += (sample - srtt) / 8`, `rttvar += (|sample - srtt| - rttvar) / 4`,
/// `rto = srtt + 4 * rttvar`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RttEstimator {
    /// Smoothed RTT, nanoseconds (0 = no samples yet).
    srtt: u64,
    /// Mean deviation, nanoseconds.
    rttvar: u64,
    /// Samples absorbed.
    samples: u64,
}

impl RttEstimator {
    /// Absorb one round-trip sample.
    pub fn observe(&mut self, sample: SimDuration) {
        let s = sample.as_nanos();
        if self.samples == 0 {
            self.srtt = s;
            self.rttvar = s / 2;
        } else {
            let err = s.abs_diff(self.srtt);
            self.rttvar = self.rttvar - self.rttvar / 4 + err / 4;
            self.srtt = self.srtt - self.srtt / 8 + s / 8;
        }
        self.samples += 1;
    }

    /// The current retransmission timeout, or `None` before any sample.
    pub fn rto(&self) -> Option<SimDuration> {
        if self.samples == 0 {
            None
        } else {
            Some(SimDuration::from_nanos(self.srtt + 4 * self.rttvar))
        }
    }

    /// Samples absorbed so far.
    #[cfg(test)]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_samples_no_rto() {
        assert!(RttEstimator::default().rto().is_none());
    }

    #[test]
    fn first_sample_sets_rto_to_three_rtts() {
        let mut e = RttEstimator::default();
        e.observe(SimDuration::from_micros(100));
        // srtt = 100 us, rttvar = 50 us -> rto = 100 + 200 = 300 us.
        assert_eq!(e.rto(), Some(SimDuration::from_micros(300)));
    }

    #[test]
    fn steady_samples_converge_toward_srtt() {
        let mut e = RttEstimator::default();
        for _ in 0..200 {
            e.observe(SimDuration::from_micros(100));
        }
        let rto = e.rto().unwrap();
        // Variance decays toward zero; rto approaches srtt (integer decay
        // stalls a little above the fixed point).
        assert!(rto >= SimDuration::from_micros(100));
        assert!(rto < SimDuration::from_micros(130), "rto = {rto}");
        assert_eq!(e.samples(), 200);
    }

    #[test]
    fn outlier_inflates_variance() {
        let mut e = RttEstimator::default();
        for _ in 0..50 {
            e.observe(SimDuration::from_micros(100));
        }
        let before = e.rto().unwrap();
        e.observe(SimDuration::from_micros(1000));
        assert!(e.rto().unwrap() > before);
    }
}
