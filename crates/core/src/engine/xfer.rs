//! In-flight transfer state machines.
//!
//! These are plain data; all transitions live in the engine's handlers.
//! Tables are `BTreeMap`s so iteration order (and therefore the whole
//! simulation) is deterministic.

use std::collections::{BTreeMap, BTreeSet};

use simcore::{EventId, SimTime};
use simmem::VirtAddr;

use crate::driver::RegionId;
use crate::endpoint::{EagerRx, EndpointAddr, RequestId};
use crate::engine::{OverlapHint, ProcId};
use crate::wire::{MsgId, PullId, XferId};

/// Sender-side state of an in-flight eager message (kept for
/// retransmission until the ack arrives; the app already saw SendDone).
pub(crate) struct EagerTx {
    /// The application request — needed to deliver a clean failure if
    /// retransmission is ever exhausted (the app saw SendDone already,
    /// but MX semantics allow a late error on the handle).
    pub req: RequestId,
    /// Causal-trace id of the transfer.
    pub xfer: XferId,
    pub proc: ProcId,
    pub peer: EndpointAddr,
    pub match_info: u64,
    pub total_len: u64,
    pub data: Vec<u8>,
    pub timer: Option<EventId>,
    pub retries: u32,
    /// When the current (re)transmission went out — RTT sample on ack,
    /// Karn-gated by `retries == 0`.
    pub sent_at: SimTime,
}

/// Receiver-side state of a *matched* eager message still reassembling.
pub(crate) struct EagerRxMatched {
    pub rx: EagerRx,
    pub req: RequestId,
    pub proc: ProcId,
    pub addr: VirtAddr,
    /// Bytes to copy to the user buffer (min of sent and posted length).
    pub copy_len: u64,
}

/// Sender-side state of a rendezvous (large-message) transfer.
pub(crate) struct SendXfer {
    pub req: RequestId,
    /// Causal-trace id of the transfer.
    pub xfer: XferId,
    pub proc: ProcId,
    pub peer: EndpointAddr,
    pub match_info: u64,
    pub region: RegionId,
    pub node: usize,
    pub total_len: u64,
    /// This transfer owns the region (non-cached modes): unpin + undeclare
    /// at completion.
    pub owned: bool,
    /// A pull request arrived — the rendezvous got through.
    pub pull_seen: bool,
    /// When the first rendezvous went on the wire (metrics: the overlap
    /// window is measured from here to the first pull request, the
    /// rendezvous round trip from here to the notify).
    pub rndv_sent_at: Option<SimTime>,
    pub rndv_timer: Option<EventId>,
    pub retries: u32,
}

/// One pull block's progress on the receive side.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Block {
    /// Frames in this block.
    pub frames: u32,
    /// Bitmask of frames received (bit i = frame i).
    pub received: u64,
    /// Has the first request for this block been sent?
    pub requested: bool,
    /// When this block was last (re)requested.
    pub requested_at: SimTime,
    /// The block has been re-requested: its completion time is ambiguous
    /// (original or retransmitted reply), so no RTT sample (Karn's rule).
    pub rerequested: bool,
}

impl Block {
    /// True when every frame arrived.
    pub fn complete(&self) -> bool {
        self.received.count_ones() == self.frames
    }

    /// Bitmask of the frames still missing.
    pub fn missing_mask(&self) -> u64 {
        let full = if self.frames == 64 {
            u64::MAX
        } else {
            (1u64 << self.frames) - 1
        };
        full & !self.received
    }
}

/// Receiver-side state of a rendezvous transfer (one pull transaction).
pub(crate) struct RecvXfer {
    pub req: RequestId,
    /// Causal-trace id of the transfer (from the sender's rndv).
    pub xfer: XferId,
    pub proc: ProcId,
    /// The sender.
    pub peer: EndpointAddr,
    /// Sender's transfer id (names the sender-side region in pull reqs).
    pub msg: MsgId,
    pub region: RegionId,
    pub node: usize,
    pub owned: bool,
    /// Bytes actually transferred (min of sent and posted length).
    pub xfer_len: u64,
    pub blocks: Vec<Block>,
    /// Next block index to request for the first time.
    pub next_block: u32,
    /// I/OAT copies still in flight.
    pub ioat_pending: u32,
    /// Frames fully placed in memory.
    pub frames_placed: u64,
    pub frames_total: u64,
    pub stall_timer: Option<EventId>,
    pub retries: u32,
}

impl RecvXfer {
    /// All frames received (masks full)?
    pub fn all_received(&self) -> bool {
        self.blocks.iter().all(Block::complete)
    }

    /// Transfer is done when everything is received *and* placed.
    pub fn data_done(&self) -> bool {
        self.all_received() && self.ioat_pending == 0
    }
}

/// Receiver-side notify retransmission state (survives the RecvXfer).
pub(crate) struct NotifyPending {
    pub proc: ProcId,
    /// Causal-trace id of the transfer.
    pub xfer: XferId,
    pub peer: EndpointAddr,
    pub timer: EventId,
    pub retries: u32,
}

/// A held I/OAT copy: bytes parked until the DMA engine finishes.
pub(crate) struct PendingCopy {
    pub pull: PullId,
    pub block: u32,
    pub frame: u32,
    pub offset: u64,
    pub data: Vec<u8>,
}

/// What to do when a region's pin cursor reaches a threshold.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PinAction {
    /// Send the rendezvous for this send transfer.
    SendRndv(MsgId),
    /// Send the initial window of pull requests for this receive transfer.
    RecvStart(PullId),
}

/// A waiter on pin progress.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PinWaiter {
    /// Fire when the cursor reaches this many pages.
    pub threshold_pages: u64,
    pub action: PinAction,
    /// Transfer whose protocol action is queued behind the threshold
    /// (drives the pin_wait_start / pin_wait_end trace pair).
    pub xfer: XferId,
}

/// Per-region on-demand pin plan.
pub(crate) struct PinPlan {
    /// Pin cursor goal (pages).
    pub target: u64,
    /// A PinChunk work item is queued or running.
    pub in_progress: bool,
    /// When the current pin burst started driving the cursor (metrics:
    /// pin latency is measured from here to quiescence).
    pub started_at: Option<SimTime>,
    pub waiters: Vec<PinWaiter>,
    /// Process whose core is charged for the pin work.
    pub proc: ProcId,
    /// Region generation this pass was stamped with at pin-start. A
    /// notifier invalidation bumps the region's generation; the pass
    /// detects the mismatch at its next chunk and restarts from the
    /// rewound cursor instead of re-pinning just-invalidated pages (the
    /// simulated `mmu_notifier_retry`).
    pub generation: u64,
    /// Pages of the in-flight pin chunk, reserved against the owning
    /// tenant's hard cap from submit until the chunk lands — two passes
    /// of one tenant racing the last of its headroom must not both pass
    /// the quota check.
    pub reserved: u64,
}

impl PinPlan {
    pub fn new(proc: ProcId) -> Self {
        PinPlan {
            target: 0,
            in_progress: false,
            started_at: None,
            waiters: Vec::new(),
            proc,
            generation: 0,
            reserved: 0,
        }
    }
}

/// Intra-node (shared-memory) message parked between send-copy and
/// receive-copy.
pub(crate) struct ShmParked {
    pub src: EndpointAddr,
    /// Causal-trace id of the transfer.
    pub xfer: XferId,
    /// Destination endpoint, incarnation-stamped at post time: shm has no
    /// watchdog, so the fence check happens when the copy-out lands.
    pub peer: EndpointAddr,
    pub match_info: u64,
    pub data: Vec<u8>,
    /// Set when matched: (receiver request, receiver proc, dst, copy_len).
    pub dst: Option<(RequestId, ProcId, VirtAddr, u64)>,
}

/// All in-flight state, keyed deterministically.
#[derive(Default)]
pub(crate) struct XferTables {
    pub eager_tx: BTreeMap<MsgId, EagerTx>,
    pub eager_rx: BTreeMap<MsgId, EagerRxMatched>,
    pub send: BTreeMap<MsgId, SendXfer>,
    pub recv: BTreeMap<PullId, RecvXfer>,
    /// Route duplicate rndv / notify-ack to the pull transaction.
    pub recv_by_msg: BTreeMap<MsgId, PullId>,
    pub notify_pending: BTreeMap<MsgId, NotifyPending>,
    pub shm: BTreeMap<MsgId, ShmParked>,
    /// Pin plans keyed by (node, region).
    pub pin_plans: BTreeMap<(usize, u32), PinPlan>,
    /// Parked I/OAT copies keyed by token.
    pub ioat: BTreeMap<u64, PendingCopy>,
    /// Cache-evicted regions that were still in use at eviction time:
    /// undeclare them when their last use drains.
    pub deferred_undeclare: BTreeSet<(usize, u32)>,
    /// Per-posted-receive overlap hints, consumed when the rendezvous
    /// matches (the posting may complete long before the rndv arrives).
    pub recv_hints: BTreeMap<RequestId, OverlapHint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mask_arithmetic() {
        let mut b = Block {
            frames: 8,
            received: 0,
            requested: false,
            requested_at: SimTime::ZERO,
            rerequested: false,
        };
        assert!(!b.complete());
        assert_eq!(b.missing_mask(), 0xff);
        b.received |= 1 << 3;
        assert_eq!(b.missing_mask(), 0xf7);
        b.received = 0xff;
        assert!(b.complete());
        assert_eq!(b.missing_mask(), 0);
    }

    #[test]
    fn block_with_64_frames() {
        let b = Block {
            frames: 64,
            received: u64::MAX - 1,
            requested: true,
            requested_at: SimTime::ZERO,
            rerequested: false,
        };
        assert!(!b.complete());
        assert_eq!(b.missing_mask(), 1);
    }
}
