//! Event handlers: the MXoE protocol state machine, on-demand pinning,
//! overlap-miss recovery, and completion plumbing.

use simcore::{Priority, SimDuration};
use simmem::VirtAddr;

use super::xfer::{
    Block, EagerRxMatched, EagerTx, NotifyPending, PendingCopy, PinAction, PinPlan, PinWaiter,
    RecvXfer, SendXfer, ShmParked,
};
use super::{AppEvent, Cluster, Event, OverlapHint, ProcId, SyscallAction, TimerToken, Work};
use crate::driver::RegionId;
use crate::endpoint::{EagerRx, EndpointAddr, PostedRecv, RequestId, Unexpected};
use crate::obs::{RetransKind, TraceEvent};
use crate::region::{DeclareError, Segment};
use crate::wire::{Frame, MsgId, PullId, WireMsg, XferId};

/// The process whose core a sliced work item belongs to.
fn work_owner(w: &Work) -> ProcId {
    match w {
        Work::EagerCopyOut { owner, .. } => *owner,
        Work::EagerDeliver { owner, .. } => *owner,
        Work::ShmSend { owner, .. } => *owner,
        Work::ShmDeliver { owner, .. } => *owner,
        _ => unreachable!("only copy works are sliced"),
    }
}

impl Cluster {
    pub(crate) fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::FrameArrival(frame) => self.on_frame_arrival(frame),
            Event::CoreDone { node, core } => self.on_core_done(node, core),
            Event::IoatDone { node, token } => self.on_ioat_done(node, token),
            Event::Timer(token) => self.on_timer(token),
        }
    }

    // ================== CPU completion plumbing ==================

    fn on_core_done(&mut self, node: usize, core: usize) {
        // Hold the core while the handler runs so that follow-up work it
        // submits (next pin chunk, next compute slice) is considered
        // before already-queued lower-priority items start.
        let (_id, work) = self.nodes[node].cores[core].complete(self.now);
        self.handle_work(work);
        if let Some(c) = self.nodes[node].cores[core].resume(self.now) {
            self.queue.schedule(c.at, Event::CoreDone { node, core });
        }
    }

    fn handle_work(&mut self, work: Work) {
        match work {
            Work::Syscall { proc, action } => self.on_syscall(proc, action),
            Work::PinChunk { node, region } => self.on_pin_chunk(node, region),
            Work::UnpinRegion {
                node,
                region,
                owner,
                undeclare,
            } => self.on_unpin_region(node, region, owner, undeclare),
            Work::BhFrame(frame) => self.on_bh_frame(frame),
            Work::Compute {
                proc,
                token,
                remaining,
            } => {
                if remaining.is_zero() {
                    self.notify_app(proc, AppEvent::ComputeDone(token));
                } else {
                    let slice = Cluster::COMPUTE_SLICE.min(remaining);
                    self.submit_proc_work(
                        proc,
                        slice,
                        Work::Compute {
                            proc,
                            token,
                            remaining: remaining - slice,
                        },
                    );
                }
            }
            Work::EagerCopyOut { owner, msg, req } => self.on_eager_copy_out(owner, msg, req),
            Work::EagerDeliver { msg, .. } => self.on_eager_deliver(msg),
            Work::ShmSend { owner, msg, req } => self.on_shm_send(owner, msg, req),
            Work::ShmDeliver { msg, .. } => self.on_shm_deliver(msg),
            Work::Slice { then, remaining } => {
                if remaining.is_zero() {
                    self.handle_work(*then);
                } else {
                    let proc = work_owner(&then);
                    let slice = Cluster::COMPUTE_SLICE.min(remaining);
                    self.submit_proc_work(
                        proc,
                        slice,
                        Work::Slice {
                            then,
                            remaining: remaining - slice,
                        },
                    );
                }
            }
        }
    }

    // ================== syscalls ==================

    fn on_syscall(&mut self, proc: ProcId, action: SyscallAction) {
        // A syscall queued behind other work when its issuer crashed dies
        // with the process — the kernel entry path checks the task state.
        if self.procs[proc.0 as usize].crashed {
            return;
        }
        match action {
            SyscallAction::Isend {
                req,
                peer,
                match_info,
                segments,
                hint,
            } => self.start_send(proc, req, peer, match_info, segments, hint),
            SyscallAction::Irecv {
                req,
                match_info,
                mask,
                addr,
                len,
                hint,
            } => self.start_recv(proc, req, match_info, mask, addr, len, hint),
        }
    }

    fn start_send(
        &mut self,
        proc: ProcId,
        req: RequestId,
        peer: ProcId,
        match_info: u64,
        segments: Vec<Segment>,
        hint: OverlapHint,
    ) {
        let len: u64 = segments.iter().map(|s| s.len).sum();
        let src_node = self.procs[proc.0 as usize].node;
        let dst_node = self.procs[peer.0 as usize].node;
        if src_node == dst_node {
            self.start_shm_send(proc, req, peer, match_info, &segments, len);
        } else if len < self.cfg.eager_threshold {
            self.start_eager_send(proc, req, peer, match_info, &segments, len);
        } else {
            self.start_rndv_send(proc, req, peer, match_info, segments, len, hint);
        }
    }

    /// Gather the bytes of a segment vector through a process's page
    /// tables (the user-context copy of the eager/shm paths). Fails when
    /// the source range is no longer mapped — the copy takes a fault, and
    /// the request must abort cleanly instead of wedging the engine.
    fn read_segments(
        &mut self,
        proc: ProcId,
        segments: &[Segment],
        len: u64,
    ) -> Result<Vec<u8>, simmem::MemError> {
        let idx = proc.0 as usize;
        let node = self.procs[idx].node;
        let space = self.procs[idx].space;
        let mut data = vec![0u8; len as usize];
        let mut cursor = 0usize;
        for seg in segments {
            self.nodes[node].mem.read(
                space,
                seg.addr,
                &mut data[cursor..cursor + seg.len as usize],
            )?;
            cursor += seg.len as usize;
        }
        Ok(data)
    }

    // ================== shared-memory (intra-node) path ==================

    fn start_shm_send(
        &mut self,
        proc: ProcId,
        req: RequestId,
        peer: ProcId,
        match_info: u64,
        segments: &[Segment],
        len: u64,
    ) {
        let msg = self.alloc_msg();
        let xfer = self.alloc_xfer();
        let node = self.procs[proc.0 as usize].node;
        let Ok(data) = self.read_segments(proc, segments, len) else {
            self.nodes[node].counters.bump("requests_failed");
            self.notify_app(proc, AppEvent::Failed(req, "send source unmapped"));
            return;
        };
        self.xfers.shm.insert(
            msg,
            ShmParked {
                src: self.addr_of(proc),
                xfer,
                peer: self.addr_of(peer),
                match_info,
                data,
                dst: None,
            },
        );
        let cost = SimDuration::from_nanos(500) + self.cfg.profile.memcpy_cost(len);
        self.submit_sliced_proc_work(
            proc,
            cost,
            Work::ShmSend {
                owner: proc,
                msg,
                req,
            },
        );
        self.nodes[node].counters.bump("shm_msgs_tx");
    }

    fn on_shm_send(&mut self, owner: ProcId, msg: MsgId, req: RequestId) {
        let Some(parked) = self.xfers.shm.get_mut(&msg) else {
            // The crash sweep dropped the parked copy while this copy-out
            // sat on the sender's core: either side may have died. A live
            // sender gets a clean failure; a dead one gets silence.
            if !self.procs[owner.0 as usize].crashed {
                let node = self.procs[owner.0 as usize].node;
                self.nodes[node].counters.bump("requests_failed");
                self.notify_app(owner, AppEvent::Failed(req, "peer crashed"));
            }
            return;
        };
        let (src, peer, match_info, xfer) =
            (parked.src, parked.peer, parked.match_info, parked.xfer);
        let total = parked.data.len() as u64;
        if self.endpoint_gone(peer) {
            // The destination died (or came back as a new incarnation)
            // since the send was posted. Shm has no watchdog to catch
            // this later, so fail the sender cleanly now instead of
            // parking bytes on a dead endpoint.
            self.xfers.shm.remove(&msg);
            let node = self.procs[owner.0 as usize].node;
            self.nodes[node].counters.bump("requests_failed");
            self.nodes[node].counters.bump("peer_dead_aborts");
            self.notify_app(owner, AppEvent::Failed(req, "peer crashed"));
            return;
        }
        self.notify_app(src.proc, AppEvent::SendDone(req));
        // Deliver to the peer endpoint (receiver-side copy still pending).
        let pidx = peer.proc.0 as usize;
        match self.procs[pidx].endpoint.match_incoming(match_info) {
            Some(posted) => {
                self.xfers.recv_hints.remove(&posted.req);
                self.shm_matched(msg, peer.proc, posted, total)
            }
            None => {
                let parked = self.xfers.shm.remove(&msg).expect("shm xfer");
                self.procs[pidx].endpoint.push_unexpected(Unexpected::Shm {
                    msg,
                    xfer,
                    src,
                    match_info,
                    data: parked.data,
                });
            }
        }
    }

    fn shm_matched(&mut self, msg: MsgId, receiver: ProcId, posted: PostedRecv, total: u64) {
        let copy_len = total.min(posted.len);
        let parked = self.xfers.shm.get_mut(&msg).expect("shm xfer");
        parked.dst = Some((posted.req, receiver, posted.addr, copy_len));
        let cost = self.cfg.profile.memcpy_cost(copy_len);
        self.submit_sliced_proc_work(
            receiver,
            cost,
            Work::ShmDeliver {
                owner: receiver,
                msg,
            },
        );
    }

    fn on_shm_deliver(&mut self, msg: MsgId) {
        let Some(parked) = self.xfers.shm.remove(&msg) else {
            return; // crash sweep already failed/settled this transfer
        };
        let (req, proc, addr, copy_len) = parked.dst.expect("matched");
        let idx = proc.0 as usize;
        let node = self.procs[idx].node;
        let space = self.procs[idx].space;
        match self.nodes[node]
            .mem
            .write(space, addr, &parked.data[..copy_len as usize])
        {
            Ok(events) => {
                self.dispatch_notifier_events(node, &events);
                self.notify_app(proc, AppEvent::RecvDone(req, copy_len));
            }
            Err(_) => {
                // The receiver unmapped its posted buffer mid-delivery:
                // the copy faults (EFAULT), the request fails cleanly.
                self.nodes[node].counters.bump("requests_failed");
                self.notify_app(proc, AppEvent::Failed(req, "receive buffer unmapped"));
            }
        }
    }

    // ================== eager path ==================

    fn start_eager_send(
        &mut self,
        proc: ProcId,
        req: RequestId,
        peer: ProcId,
        match_info: u64,
        segments: &[Segment],
        len: u64,
    ) {
        let msg = self.alloc_msg();
        let xfer = self.alloc_xfer();
        let node = self.procs[proc.0 as usize].node;
        let Ok(data) = self.read_segments(proc, segments, len) else {
            self.nodes[node].counters.bump("requests_failed");
            self.notify_app(proc, AppEvent::Failed(req, "send source unmapped"));
            return;
        };
        self.xfers.eager_tx.insert(
            msg,
            EagerTx {
                req,
                xfer,
                proc,
                peer: self.addr_of(peer),
                match_info,
                total_len: len,
                data,
                timer: None,
                retries: 0,
                sent_at: self.now,
            },
        );
        let frags = simnet::frame::frame_count(len, self.cfg.net.mtu);
        let cost = self.cfg.profile.memcpy_cost(len) + self.cfg.profile.tx_setup.times(frags);
        self.submit_sliced_proc_work(
            proc,
            cost,
            Work::EagerCopyOut {
                owner: proc,
                msg,
                req,
            },
        );
        self.nodes[node].counters.bump("eager_msgs_tx");
    }

    fn on_eager_copy_out(&mut self, owner: ProcId, msg: MsgId, req: RequestId) {
        self.transmit_eager_frames(msg);
        // The ack may already have raced the copy-out completion (duplicate
        // delivery paths): only (re)arm if the tx state is still live.
        if let Some(xfer) = self.xfers.eager_tx.get(&msg).map(|tx| tx.xfer) {
            let node = self.procs[owner.0 as usize].node;
            let timeout = self.retrans_timeout(node, RetransKind::Eager, msg.0, xfer, 0);
            let timer = self.arm_timer(timeout, TimerToken::EagerRetrans(msg));
            let now = self.now;
            if let Some(tx) = self.xfers.eager_tx.get_mut(&msg) {
                tx.timer = Some(timer);
                tx.sent_at = now;
            }
        }
        // MX eager semantics: the send completes locally once the data has
        // been copied out of the user buffer.
        self.notify_app(owner, AppEvent::SendDone(req));
    }

    fn transmit_eager_frames(&mut self, msg: MsgId) {
        let chunk = self.frame_payload();
        let mtu = self.cfg.net.mtu;
        let Some(tx) = self.xfers.eager_tx.get(&msg) else {
            return; // acked and reclaimed while this work was queued
        };
        let (proc, peer, match_info, total, xfer) =
            (tx.proc, tx.peer, tx.match_info, tx.total_len, tx.xfer);
        let src = self.addr_of(proc);
        let tx = &self.xfers.eager_tx[&msg];
        let frag_count = simnet::frame::frame_count(total, mtu) as u32;
        let mut frames = Vec::new();
        for frag in 0..frag_count {
            let offset = frag as u64 * chunk;
            let flen = chunk.min(total - offset);
            let data = tx.data[offset as usize..(offset + flen) as usize].to_vec();
            frames.push(Frame {
                src,
                dst: peer,
                msg: WireMsg::Eager {
                    msg,
                    xfer,
                    match_info,
                    frag,
                    frag_count,
                    total_len: total,
                    offset,
                    data,
                },
            });
        }
        for f in frames {
            self.transmit(f);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_eager_frame(
        &mut self,
        src: EndpointAddr,
        dst: ProcId,
        msg: MsgId,
        xfer: XferId,
        match_info: u64,
        frag: u32,
        frag_count: u32,
        total_len: u64,
        offset: u64,
        data: Vec<u8>,
    ) {
        let idx = dst.0 as usize;
        if self.procs[idx].endpoint.is_completed(msg) {
            // Duplicate of a finished message: just re-ack.
            let ack = self.frame(dst, src, WireMsg::EagerAck { msg, xfer });
            self.transmit(ack);
            return;
        }
        // Matched, still reassembling?
        if let Some(m) = self.xfers.eager_rx.get_mut(&msg) {
            if m.rx.has_frag(frag) {
                self.counters.bump("eager_dup_frags");
                self.metrics.record_dup_frame();
                return;
            }
            if m.rx.absorb(frag, offset, &data) {
                let cost = self.cfg.profile.memcpy_cost(m.copy_len);
                let proc = m.proc;
                self.submit_sliced_proc_work(proc, cost, Work::EagerDeliver { owner: proc, msg });
            }
            return;
        }
        // Unexpected, still reassembling?
        if let Some(u) = self.procs[idx].endpoint.unexpected_eager_mut(msg) {
            if u.has_frag(frag) {
                self.counters.bump("eager_dup_frags");
                self.metrics.record_dup_frame();
                return;
            }
            u.absorb(frag, offset, &data);
            return;
        }
        // First frame of a new message.
        let mut rx = EagerRx::new(msg, xfer, src, match_info, total_len, frag_count);
        let complete = rx.absorb(frag, offset, &data);
        match self.procs[idx].endpoint.match_incoming(match_info) {
            Some(posted) => {
                self.xfers.recv_hints.remove(&posted.req);
                let copy_len = total_len.min(posted.len);
                self.xfers.eager_rx.insert(
                    msg,
                    EagerRxMatched {
                        rx,
                        req: posted.req,
                        proc: dst,
                        addr: posted.addr,
                        copy_len,
                    },
                );
                if complete {
                    let cost = self.cfg.profile.memcpy_cost(copy_len);
                    self.submit_sliced_proc_work(dst, cost, Work::EagerDeliver { owner: dst, msg });
                }
            }
            None => {
                self.procs[idx]
                    .endpoint
                    .push_unexpected(Unexpected::Eager(rx));
            }
        }
    }

    fn on_eager_deliver(&mut self, msg: MsgId) {
        let Some(m) = self.xfers.eager_rx.remove(&msg) else {
            return; // crash sweep already failed/settled this transfer
        };
        let idx = m.proc.0 as usize;
        let node = self.procs[idx].node;
        let space = self.procs[idx].space;
        let delivered =
            self.nodes[node]
                .mem
                .write(space, m.addr, &m.rx.buffer[..m.copy_len as usize]);
        // Ack either way: the message *was* received. A receiver that
        // unmapped its posted buffer gets a clean local failure (EFAULT on
        // the copy); the sender must not retransmit into the same fault.
        self.procs[idx].endpoint.mark_completed(msg);
        let ack = self.frame(
            m.proc,
            m.rx.src,
            WireMsg::EagerAck {
                msg,
                xfer: m.rx.xfer,
            },
        );
        self.transmit(ack);
        match delivered {
            Ok(events) => {
                self.dispatch_notifier_events(node, &events);
                self.notify_app(m.proc, AppEvent::RecvDone(m.req, m.copy_len));
            }
            Err(_) => {
                self.nodes[node].counters.bump("requests_failed");
                self.notify_app(m.proc, AppEvent::Failed(m.req, "receive buffer unmapped"));
            }
        }
    }

    // ================== rendezvous send side ==================

    #[allow(clippy::too_many_arguments)]
    fn start_rndv_send(
        &mut self,
        proc: ProcId,
        req: RequestId,
        peer: ProcId,
        match_info: u64,
        segments: Vec<Segment>,
        len: u64,
        hint: OverlapHint,
    ) {
        let node = self.procs[proc.0 as usize].node;
        let Ok((region, owned)) = self.acquire_region(proc, segments) else {
            self.nodes[node].counters.bump("requests_failed");
            self.notify_app(proc, AppEvent::Failed(req, "send region rejected (empty)"));
            return;
        };
        let msg = self.alloc_msg();
        let xfer = self.alloc_xfer();
        let target = self.pin_target(node, region, len);
        self.xfers.send.insert(
            msg,
            SendXfer {
                req,
                xfer,
                proc,
                peer: self.addr_of(peer),
                match_info,
                region,
                node,
                total_len: len,
                owned,
                pull_seen: false,
                rndv_sent_at: None,
                rndv_timer: None,
                retries: 0,
            },
        );
        self.nodes[node].counters.bump("rndv_msgs_tx");
        if hint.resolve(self.cfg.pinning.overlaps()) {
            let presync = self.cfg.presync_pages.min(target);
            if presync > 0 {
                let sat = self.ensure_pinned(
                    node,
                    proc,
                    region,
                    target,
                    Some(PinWaiter {
                        threshold_pages: presync,
                        action: PinAction::SendRndv(msg),
                        xfer,
                    }),
                );
                if sat {
                    self.send_rndv(msg);
                }
            } else {
                self.ensure_pinned(node, proc, region, target, None);
                self.send_rndv(msg);
            }
        } else {
            let sat = self.ensure_pinned(
                node,
                proc,
                region,
                target,
                Some(PinWaiter {
                    threshold_pages: target,
                    action: PinAction::SendRndv(msg),
                    xfer,
                }),
            );
            if sat {
                self.send_rndv(msg);
            }
        }
    }

    fn send_rndv(&mut self, msg: MsgId) {
        let now = self.now;
        let Some(x) = self.xfers.send.get_mut(&msg) else {
            return; // transfer aborted while the pin waiter was queued
        };
        let (proc, peer, match_info, total_len, node, attempt, xfer) = (
            x.proc,
            x.peer,
            x.match_info,
            x.total_len,
            x.node,
            x.retries,
            x.xfer,
        );
        if x.rndv_sent_at.is_none() {
            x.rndv_sent_at = Some(now);
        }
        let old = x.rndv_timer.take();
        self.cancel_timer(old);
        let f = self.frame(
            proc,
            peer,
            WireMsg::Rndv {
                msg,
                xfer,
                match_info,
                total_len,
            },
        );
        self.transmit(f);
        let timeout = self.retrans_timeout(node, RetransKind::Rndv, msg.0, xfer, attempt);
        let t = self.arm_timer(timeout, TimerToken::RndvRetrans(msg));
        if let Some(x) = self.xfers.send.get_mut(&msg) {
            x.rndv_timer = Some(t);
        } else {
            self.cancel_timer(Some(t));
        }
        self.emit(
            node,
            Some(proc),
            TraceEvent::RndvTx {
                msg,
                xfer,
                len: total_len,
            },
        );
    }

    fn on_pull_req(
        &mut self,
        msg: MsgId,
        pull: PullId,
        block: u32,
        frame_mask: u64,
        xfer_len: u64,
    ) {
        let now = self.now;
        let Some(x) = self.xfers.send.get_mut(&msg) else {
            self.counters.bump("pull_req_stale");
            return;
        };
        let first_pull = !x.pull_seen;
        if first_pull {
            x.pull_seen = true;
            // The first pull request closes the overlap window: everything
            // between the rendezvous and here was free pinning time.
            if let Some(sent) = x.rndv_sent_at {
                let sample = now.duration_since(sent);
                self.metrics.overlap_window.record(sample);
                // Rendezvous -> first pull request is the protocol's control
                // round trip — the RTT the retransmission policy adapts to.
                // Karn's rule: skip retransmitted rendezvous.
                if x.retries == 0 {
                    self.rtt.observe(sample);
                }
            }
        }
        // Every pull request is sender-visible progress: reset the attempt
        // counter and re-arm the rendezvous timer as a completion watchdog.
        // (The old protocol cancelled it here with no replacement — a
        // lost-forever notify then hung the sender permanently.)
        let x = self.xfers.send.get_mut(&msg).expect("send xfer");
        x.retries = 0;
        let old = x.rndv_timer.take();
        let (node, region, proc, peer, total_len, xfer) =
            (x.node, x.region, x.proc, x.peer, x.total_len, x.xfer);
        self.cancel_timer(old);
        let timeout = self.retrans_timeout(node, RetransKind::Rndv, msg.0, xfer, 0);
        let t = self.arm_timer(timeout, TimerToken::RndvRetrans(msg));
        if let Some(x) = self.xfers.send.get_mut(&msg) {
            x.rndv_timer = Some(t);
        } else {
            self.cancel_timer(Some(t));
        }
        // The receiver may have truncated the transfer to its posted size.
        let limit = total_len.min(xfer_len);
        let chunk = self.frame_payload();
        let block_base = block as u64 * self.cfg.pull_block;
        // Bogus or stale coordinates (e.g. a duplicate request racing a
        // shrunk transfer) must not underflow the block math.
        if block_base >= limit {
            self.nodes[node].counters.bump("pull_req_bogus");
            return;
        }
        let block_len = self.cfg.pull_block.min(limit - block_base);
        let nframes = block_len.div_ceil(chunk) as u32;
        debug_assert!(nframes <= 64, "pull block exceeds the frame mask");
        let mut replies = Vec::new();
        let mut missed = false;
        {
            let n = &self.nodes[node];
            let r = n.driver.region(region);
            for f in 0..nframes {
                if frame_mask & (1u64 << f) == 0 {
                    continue;
                }
                let off = block_base + f as u64 * chunk;
                let flen = chunk.min(limit - off);
                let mut data = vec![0u8; flen as usize];
                match r.read(&n.mem, off, &mut data) {
                    Ok(()) => replies.push((f, off, data)),
                    Err(_) => {
                        // Sender-side overlap miss: the pull request beat
                        // the pin cursor. Drop this frame; the receiver
                        // re-requests it.
                        missed = true;
                    }
                }
            }
        }
        if missed {
            self.nodes[node].counters.bump("overlap_miss_tx");
            self.emit(
                node,
                Some(proc),
                TraceEvent::OverlapMissTx { msg, xfer, block },
            );
            // Make sure pinning is (still) progressing toward the end.
            let target = self.pin_target(node, region, limit);
            self.ensure_pinned(node, proc, region, target, None);
        }
        for (f, off, data) in replies {
            let frame = self.frame(
                proc,
                peer,
                WireMsg::PullReply {
                    pull,
                    xfer,
                    block,
                    frame: f,
                    offset: off,
                    data,
                },
            );
            self.transmit(frame);
        }
    }

    fn on_notify(&mut self, src: EndpointAddr, dst: ProcId, msg: MsgId, xfer: XferId) {
        // Always ack so the receiver can quiesce, even for duplicates.
        let ack = self.frame(dst, src, WireMsg::NotifyAck { msg, xfer });
        self.transmit(ack);
        let Some(x) = self.xfers.send.remove(&msg) else {
            self.counters.bump("notify_dup");
            self.metrics.record_dup_frame();
            return; // duplicate notify
        };
        self.cancel_timer(x.rndv_timer);
        if let Some(sent) = x.rndv_sent_at {
            self.metrics.rndv_rtt.record(self.now.duration_since(sent));
        }
        self.release_region(x.proc, x.node, x.region, x.owned);
        self.emit(
            x.node,
            Some(x.proc),
            TraceEvent::SendDone { msg, xfer: x.xfer },
        );
        self.notify_app(x.proc, AppEvent::SendDone(x.req));
    }

    // ================== rendezvous receive side ==================

    #[allow(clippy::too_many_arguments)]
    fn start_recv(
        &mut self,
        proc: ProcId,
        req: RequestId,
        match_info: u64,
        mask: u64,
        addr: VirtAddr,
        len: u64,
        hint: OverlapHint,
    ) {
        self.xfers.recv_hints.insert(req, hint);
        let posted = PostedRecv {
            req,
            match_info,
            mask,
            addr,
            len,
        };
        let idx = proc.0 as usize;
        match self.procs[idx].endpoint.post_recv(posted) {
            None => {}
            Some(Unexpected::Eager(rx)) => {
                self.xfers.recv_hints.remove(&req);
                let msg = rx.msg;
                let copy_len = rx.total_len.min(len);
                let complete = rx.complete();
                self.xfers.eager_rx.insert(
                    msg,
                    EagerRxMatched {
                        rx,
                        req,
                        proc,
                        addr,
                        copy_len,
                    },
                );
                if complete {
                    let cost = self.cfg.profile.memcpy_cost(copy_len);
                    self.submit_sliced_proc_work(
                        proc,
                        cost,
                        Work::EagerDeliver { owner: proc, msg },
                    );
                }
            }
            Some(Unexpected::Rndv {
                msg,
                xfer,
                src,
                total_len,
                ..
            }) => {
                self.start_recv_xfer(proc, src, msg, xfer, total_len, posted);
            }
            Some(Unexpected::Shm {
                msg,
                xfer,
                src,
                data,
                ..
            }) => {
                self.xfers.recv_hints.remove(&req);
                let total = data.len() as u64;
                self.xfers.shm.insert(
                    msg,
                    ShmParked {
                        src,
                        xfer,
                        peer: self.addr_of(proc),
                        match_info,
                        data,
                        dst: None,
                    },
                );
                self.shm_matched(msg, proc, posted, total);
            }
        }
    }

    fn start_recv_xfer(
        &mut self,
        proc: ProcId,
        src: EndpointAddr,
        msg: MsgId,
        xfer: XferId,
        total_len: u64,
        posted: PostedRecv,
    ) {
        let node = self.procs[proc.0 as usize].node;
        let xfer_len = total_len.min(posted.len);
        // Cached modes key the region on the full posted buffer so repeat
        // receives hit; per-comm modes declare exactly what is needed
        // ("no need to pin an entire region if only part of it is used").
        let reg_len = if self.cfg.pinning.caches() {
            posted.len
        } else {
            xfer_len
        };
        let acquired = self.acquire_region(
            proc,
            vec![Segment {
                addr: posted.addr,
                len: reg_len,
            }],
        );
        let Ok((region, owned)) = acquired else {
            // Zero-length posted buffer: fail the receive cleanly; the
            // sender recovers through its normal retry/timeout path.
            self.xfers.recv_hints.remove(&posted.req);
            self.nodes[node].counters.bump("requests_failed");
            self.notify_app(
                proc,
                AppEvent::Failed(posted.req, "receive region rejected (empty)"),
            );
            return;
        };
        let target = self.pin_target(node, region, xfer_len);
        let pull = self.alloc_pull();
        let chunk = self.frame_payload();
        let nblocks = xfer_len.div_ceil(self.cfg.pull_block);
        let mut blocks = Vec::with_capacity(nblocks as usize);
        let mut frames_total = 0u64;
        for b in 0..nblocks {
            let base = b * self.cfg.pull_block;
            let blen = self.cfg.pull_block.min(xfer_len - base);
            let frames = blen.div_ceil(chunk) as u32;
            assert!(frames <= 64, "pull_block too large for the frame mask");
            frames_total += frames as u64;
            blocks.push(Block {
                frames,
                received: 0,
                requested: false,
                requested_at: self.now,
                rerequested: false,
            });
        }
        let timeout = self.retrans_timeout(node, RetransKind::PullStall, pull.0, xfer, 0);
        let timer = self.arm_timer(timeout, TimerToken::PullStall(pull));
        self.xfers.recv.insert(
            pull,
            RecvXfer {
                req: posted.req,
                xfer,
                proc,
                peer: src,
                msg,
                region,
                node,
                owned,
                xfer_len,
                blocks,
                next_block: 0,
                ioat_pending: 0,
                frames_placed: 0,
                frames_total,
                stall_timer: Some(timer),
                retries: 0,
            },
        );
        self.xfers.recv_by_msg.insert(msg, pull);
        self.emit(
            node,
            Some(proc),
            TraceEvent::RndvRx {
                msg,
                xfer,
                len: xfer_len,
            },
        );
        let hint = self
            .xfers
            .recv_hints
            .remove(&posted.req)
            .unwrap_or_default();
        if hint.resolve(self.cfg.pinning.overlaps()) {
            let presync = self.cfg.presync_pages.min(target);
            if presync > 0 {
                let sat = self.ensure_pinned(
                    node,
                    proc,
                    region,
                    target,
                    Some(PinWaiter {
                        threshold_pages: presync,
                        action: PinAction::RecvStart(pull),
                        xfer,
                    }),
                );
                if sat {
                    self.recv_start(pull);
                }
            } else {
                self.ensure_pinned(node, proc, region, target, None);
                self.recv_start(pull);
            }
        } else {
            let sat = self.ensure_pinned(
                node,
                proc,
                region,
                target,
                Some(PinWaiter {
                    threshold_pages: target,
                    action: PinAction::RecvStart(pull),
                    xfer,
                }),
            );
            if sat {
                self.recv_start(pull);
            }
        }
    }

    /// Send the initial window of pull requests.
    fn recv_start(&mut self, pull: PullId) {
        let window = self.cfg.pull_window;
        for _ in 0..window {
            if !self.request_next_block(pull) {
                break;
            }
        }
    }

    /// Request the next unrequested block, if any. Returns false when all
    /// blocks have been requested.
    fn request_next_block(&mut self, pull: PullId) -> bool {
        let Some(x) = self.xfers.recv.get_mut(&pull) else {
            return false;
        };
        let b = x.next_block;
        if b as u64 >= x.blocks.len() as u64 {
            return false;
        }
        x.next_block += 1;
        x.blocks[b as usize].requested = true;
        x.blocks[b as usize].requested_at = self.now;
        let mask = x.blocks[b as usize].missing_mask();
        let (proc, peer, msg, xfer_len, xfer) = (x.proc, x.peer, x.msg, x.xfer_len, x.xfer);
        let node = self.procs[proc.0 as usize].node;
        self.emit(
            node,
            Some(proc),
            TraceEvent::PullReq {
                msg,
                xfer,
                block: b,
            },
        );
        let f = self.frame(
            proc,
            peer,
            WireMsg::PullReq {
                pull,
                msg,
                xfer,
                block: b,
                frame_mask: mask,
                xfer_len,
            },
        );
        self.transmit(f);
        true
    }

    /// Re-request the missing frames of one block.
    fn rerequest_block(&mut self, pull: PullId, block: u32) {
        let Some(x) = self.xfers.recv.get_mut(&pull) else {
            return;
        };
        let blk = &mut x.blocks[block as usize];
        let mask = blk.missing_mask();
        if mask == 0 {
            return;
        }
        blk.requested_at = self.now;
        blk.rerequested = true;
        let (proc, peer, msg, xfer_len, xfer) = (x.proc, x.peer, x.msg, x.xfer_len, x.xfer);
        let f = self.frame(
            proc,
            peer,
            WireMsg::PullReq {
                pull,
                msg,
                xfer,
                block,
                frame_mask: mask,
                xfer_len,
            },
        );
        self.transmit(f);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_rndv(
        &mut self,
        src: EndpointAddr,
        dst: ProcId,
        msg: MsgId,
        xfer: XferId,
        match_info: u64,
        total_len: u64,
    ) {
        let idx = dst.0 as usize;
        // Duplicate suppression: already matched, queued, or finished.
        if self.procs[idx].endpoint.is_completed(msg)
            || self.xfers.recv_by_msg.contains_key(&msg)
            || self.procs[idx].endpoint.has_unexpected(msg)
        {
            self.counters.bump("rndv_dup");
            self.metrics.record_dup_frame();
            return;
        }
        match self.procs[idx].endpoint.match_incoming(match_info) {
            Some(posted) => self.start_recv_xfer(dst, src, msg, xfer, total_len, posted),
            None => self.procs[idx].endpoint.push_unexpected(Unexpected::Rndv {
                msg,
                xfer,
                src,
                match_info,
                total_len,
            }),
        }
    }

    fn on_pull_reply(
        &mut self,
        _dst: ProcId,
        pull: PullId,
        block: u32,
        frame: u32,
        offset: u64,
        data: Vec<u8>,
    ) {
        let Some(x) = self.xfers.recv.get_mut(&pull) else {
            // Stale: the transfer already finished (e.g. a duplicated or
            // badly delayed reply outliving its transaction).
            self.counters.bump("pull_reply_stale");
            self.metrics.record_dup_frame();
            return;
        };
        // Bounds before bit math: hostile coordinates must degrade, not
        // panic with a shift overflow or out-of-range index.
        if block as usize >= x.blocks.len() || frame >= x.blocks[block as usize].frames {
            self.counters.bump("pull_reply_bogus");
            return;
        }
        let bit = 1u64 << frame;
        if x.blocks[block as usize].received & bit != 0 {
            self.counters.bump("dup_frames_rx");
            self.metrics.record_dup_frame();
            return; // duplicate frame
        }
        let (node, region, proc, xfer_len, xfer) = (x.node, x.region, x.proc, x.xfer_len, x.xfer);
        let len = data.len() as u64;

        // The decisive check of the overlapped design: has the pin cursor
        // passed the touched pages? If not, drop the packet (§3.3) and let
        // re-request recover it once pinning catches up.
        let pinned = self.nodes[node]
            .driver
            .region(region)
            .pinned_through(offset, len);
        if !pinned {
            self.nodes[node].counters.bump("overlap_miss_rx");
            self.nodes[node].counters.bump("frames_dropped_unpinned");
            self.metrics.record_overlap_miss();
            self.emit(
                node,
                Some(proc),
                TraceEvent::OverlapMissRx { pull, xfer, offset },
            );
            self.emit(
                node,
                Some(proc),
                TraceEvent::PacketDrop { pull, xfer, offset },
            );
            let target = self.pin_target(node, region, xfer_len);
            self.ensure_pinned(node, proc, region, target, None);
            return;
        }
        self.metrics.record_pull_frame_ok();

        if self.cfg.use_ioat {
            let token = self.next_ioat_token;
            self.next_ioat_token += 1;
            let done = self.nodes[node].ioat.submit(self.now, len);
            self.queue.schedule(done, Event::IoatDone { node, token });
            self.xfers.ioat.insert(
                token,
                PendingCopy {
                    pull,
                    block,
                    frame,
                    offset,
                    data,
                },
            );
            if let Some(x) = self.xfers.recv.get_mut(&pull) {
                x.ioat_pending += 1;
                x.blocks[block as usize].received |= bit;
            }
        } else {
            let n = &mut self.nodes[node];
            let r = n.driver.region(region);
            r.write(&mut n.mem, offset, &data).expect("pinned write");
            if let Some(x) = self.xfers.recv.get_mut(&pull) {
                x.blocks[block as usize].received |= bit;
                x.frames_placed += 1;
            }
        }

        self.after_pull_progress(pull, block, proc);
    }

    /// Common post-processing after any pull progress: next block request,
    /// optimistic re-requests, stall-timer reset, completion check.
    fn after_pull_progress(&mut self, pull: PullId, block: u32, _proc: ProcId) {
        let Some(x) = self.xfers.recv.get_mut(&pull) else {
            return;
        };
        // Block finished -> keep the pipeline full.
        if x.blocks[block as usize].complete() {
            let (node, proc, xfer) = (x.node, x.proc, x.xfer);
            let blk = x.blocks[block as usize];
            // Forward progress: the retry budget is for consecutive silent
            // timeouts, not for the whole (possibly long) transfer.
            x.retries = 0;
            // A completed block is an RTT sample for the adaptive timer —
            // unless it was ever re-requested, in which case the completion
            // is ambiguous (Karn's rule).
            if !blk.rerequested {
                self.rtt
                    .observe(self.now.saturating_duration_since(blk.requested_at));
            }
            self.emit(
                node,
                Some(proc),
                TraceEvent::BlockDone { pull, xfer, block },
            );
            self.request_next_block(pull);
        }
        // Optimistic re-request (§4.3): receiving a frame of block `b`
        // while an *earlier* block still has holes and has not been
        // re-requested recently means those frames were dropped.
        let guard = self.rerequest_guard();
        let mut rerequests = Vec::new();
        if self.cfg.optimistic_rerequest {
            if let Some(x) = self.xfers.recv.get(&pull) {
                for (i, blk) in x.blocks.iter().enumerate() {
                    if (i as u32) < block
                        && blk.requested
                        && !blk.complete()
                        && self.now.saturating_duration_since(blk.requested_at) > guard
                    {
                        rerequests.push(i as u32);
                    }
                }
            }
        }
        for b in rerequests {
            let Some(x) = self.xfers.recv.get(&pull) else {
                return;
            };
            let (node, proc, xfer) = (x.node, x.proc, x.xfer);
            self.nodes[node].counters.bump("pull_rereq_optimistic");
            self.metrics.record_retransmit();
            self.emit(
                node,
                Some(proc),
                TraceEvent::Retransmit {
                    kind: RetransKind::OptimisticRereq,
                    id: pull.0,
                    xfer,
                },
            );
            self.rerequest_block(pull, b);
        }
        // Progress: push the stall timer out.
        let Some(x) = self.xfers.recv.get_mut(&pull) else {
            return;
        };
        let t = x.stall_timer.take();
        let (node, xfer) = (x.node, x.xfer);
        self.cancel_timer(t);
        let timeout = self.retrans_timeout(node, RetransKind::PullStall, pull.0, xfer, 0);
        let timer = self.arm_timer(timeout, TimerToken::PullStall(pull));
        let Some(x) = self.xfers.recv.get_mut(&pull) else {
            self.queue.cancel(timer);
            return;
        };
        x.stall_timer = Some(timer);
        if x.data_done() {
            self.finish_recv(pull);
        }
    }

    fn on_ioat_done(&mut self, node: usize, token: u64) {
        let Some(copy) = self.xfers.ioat.remove(&token) else {
            return;
        };
        let Some(x) = self.xfers.recv.get_mut(&copy.pull) else {
            return; // transfer failed/aborted while the copy was in flight
        };
        x.ioat_pending -= 1;
        let (region, proc) = (x.region, x.proc);
        let pull = copy.pull;
        let n = &mut self.nodes[node];
        let r = n.driver.region(region);
        match r.write(&mut n.mem, copy.offset, &copy.data) {
            Ok(()) => {
                if let Some(x) = self.xfers.recv.get_mut(&pull) {
                    x.frames_placed += 1;
                }
            }
            Err(_) => {
                // Region was invalidated mid-copy: treat the frame as lost.
                n.counters.bump("ioat_landing_miss");
                if let Some(x) = self.xfers.recv.get_mut(&pull) {
                    x.blocks[copy.block as usize].received &= !(1u64 << copy.frame);
                }
            }
        }
        self.after_pull_progress(pull, copy.block, proc);
    }

    fn finish_recv(&mut self, pull: PullId) {
        let Some(x) = self.xfers.recv.remove(&pull) else {
            return;
        };
        self.xfers.recv_by_msg.remove(&x.msg);
        self.cancel_timer(x.stall_timer);
        self.procs[x.proc.0 as usize].endpoint.mark_completed(x.msg);
        let notify = self.frame(
            x.proc,
            x.peer,
            WireMsg::Notify {
                msg: x.msg,
                xfer: x.xfer,
            },
        );
        self.transmit(notify);
        let timeout = self.retrans_timeout(x.node, RetransKind::Notify, x.msg.0, x.xfer, 0);
        let timer = self.arm_timer(timeout, TimerToken::NotifyRetrans(x.msg));
        self.xfers.notify_pending.insert(
            x.msg,
            NotifyPending {
                proc: x.proc,
                xfer: x.xfer,
                peer: x.peer,
                timer,
                retries: 0,
            },
        );
        debug_assert_eq!(x.frames_placed, x.frames_total, "placed every frame");
        self.release_region(x.proc, x.node, x.region, x.owned);
        self.emit(
            x.node,
            Some(x.proc),
            TraceEvent::RecvDone {
                msg: x.msg,
                xfer: x.xfer,
                len: x.xfer_len,
            },
        );
        self.notify_app(x.proc, AppEvent::RecvDone(x.req, x.xfer_len));
    }

    fn on_notify_ack(&mut self, msg: MsgId) {
        if let Some(p) = self.xfers.notify_pending.remove(&msg) {
            self.queue.cancel(p.timer);
        }
    }

    // ================== frame reception ==================

    fn on_frame_arrival(&mut self, frame: Frame) {
        let dst = frame.dst.proc;
        let node = self.procs[dst.0 as usize].node;
        self.nodes[node].counters.bump("frames_rx");
        // Incarnation fence: a frame from or to an endpoint that no longer
        // exists (crashed, or restarted under a newer incarnation) dies at
        // the NIC, before any bottom-half cost is charged. Stale traffic
        // must never resurrect protocol state in the new incarnation.
        if self.endpoint_gone(frame.src) || self.endpoint_gone(frame.dst) {
            self.fence_frame(node, &frame);
            return;
        }
        let duration = self.bh_duration(node, &frame.msg);
        let bh = self.nodes[node].bh_core;
        self.submit_work(
            node,
            bh,
            Priority::BottomHalf,
            duration,
            Work::BhFrame(frame),
        );
    }

    fn bh_duration(&self, node: usize, msg: &WireMsg) -> SimDuration {
        let p = &self.cfg.profile;
        match msg {
            WireMsg::Eager { data, .. } => p.pkt_processing + p.memcpy_cost(data.len() as u64),
            WireMsg::PullReply { data, .. } => {
                p.pkt_processing
                    + if self.cfg.use_ioat {
                        self.nodes[node].ioat.submit_cost()
                    } else {
                        p.memcpy_cost(data.len() as u64)
                    }
            }
            _ => p.pkt_processing,
        }
    }

    /// Drop a frame at the incarnation fence: count it, attribute it to
    /// its transfer in the trace, and charge nothing further.
    fn fence_frame(&mut self, node: usize, frame: &Frame) {
        self.nodes[node].counters.bump("frames_fenced");
        self.emit(
            node,
            Some(frame.dst.proc),
            TraceEvent::FencedDrop {
                src: frame.src.proc,
                dst: frame.dst.proc,
                xfer: frame.msg.xfer(),
            },
        );
    }

    fn on_bh_frame(&mut self, frame: Frame) {
        let src = frame.src;
        let dst = frame.dst.proc;
        // Re-check the fence: the endpoint may have died between the
        // frame's arrival and its bottom half running.
        if self.endpoint_gone(frame.src) || self.endpoint_gone(frame.dst) {
            let node = self.procs[dst.0 as usize].node;
            self.fence_frame(node, &frame);
            return;
        }
        match frame.msg {
            WireMsg::Eager {
                msg,
                xfer,
                match_info,
                frag,
                frag_count,
                total_len,
                offset,
                data,
            } => self.on_eager_frame(
                src, dst, msg, xfer, match_info, frag, frag_count, total_len, offset, data,
            ),
            WireMsg::EagerAck { msg, .. } => {
                if let Some(tx) = self.xfers.eager_tx.remove(&msg) {
                    self.cancel_timer(tx.timer);
                    // Karn's rule: only a never-retransmitted exchange gives
                    // an unambiguous round-trip sample.
                    if tx.retries == 0 {
                        self.rtt
                            .observe(self.now.saturating_duration_since(tx.sent_at));
                    }
                } else {
                    self.counters.bump("eager_ack_dup");
                    self.metrics.record_dup_frame();
                }
            }
            WireMsg::Rndv {
                msg,
                xfer,
                match_info,
                total_len,
            } => self.on_rndv(src, dst, msg, xfer, match_info, total_len),
            WireMsg::PullReq {
                pull,
                msg,
                block,
                frame_mask,
                xfer_len,
                ..
            } => self.on_pull_req(msg, pull, block, frame_mask, xfer_len),
            WireMsg::PullReply {
                pull,
                block,
                frame,
                offset,
                data,
                ..
            } => self.on_pull_reply(dst, pull, block, frame, offset, data),
            WireMsg::Notify { msg, xfer } => self.on_notify(src, dst, msg, xfer),
            WireMsg::NotifyAck { msg, .. } => self.on_notify_ack(msg),
        }
    }

    // ================== region acquisition & release ==================

    /// Get a region for a segment vector: through the user-space cache in
    /// cached modes, freshly declared otherwise. Bumps `use_count`.
    /// A rejected declaration (all-zero-length segments — user space can
    /// hand the driver anything) surfaces as `Err`, never a panic; the
    /// cache is left untouched on that path.
    fn acquire_region(
        &mut self,
        proc: ProcId,
        segments: Vec<Segment>,
    ) -> Result<(RegionId, bool), DeclareError> {
        let idx = proc.0 as usize;
        let node = self.procs[idx].node;
        let space = self.procs[idx].space;
        let (rid, owned) = if self.cfg.pinning.caches() {
            match self.procs[idx].cache.lookup(&segments) {
                crate::cache::CacheOutcome::Hit(rid) => {
                    self.nodes[node].counters.bump("cache_hit");
                    self.emit(node, Some(proc), TraceEvent::CacheHit { region: rid });
                    (rid, false)
                }
                crate::cache::CacheOutcome::Miss => {
                    self.nodes[node].counters.bump("cache_miss");
                    self.emit(node, Some(proc), TraceEvent::CacheMiss);
                    let rid = self.nodes[node]
                        .driver
                        .declare_owned(space, proc, &segments)?;
                    let pages = self.nodes[node].driver.region(rid).layout.total_pages();
                    self.emit(
                        node,
                        Some(proc),
                        TraceEvent::RegionDeclare { region: rid, pages },
                    );
                    if let Some(victim) = self.procs[idx].cache.insert(segments, rid) {
                        self.evict_cached_region(proc, node, victim);
                    }
                    (rid, false)
                }
            }
        } else {
            let rid = self.nodes[node]
                .driver
                .declare_owned(space, proc, &segments)?;
            let pages = self.nodes[node].driver.region(rid).layout.total_pages();
            self.emit(
                node,
                Some(proc),
                TraceEvent::RegionDeclare { region: rid, pages },
            );
            (rid, true)
        };
        let now = self.now;
        let r = self.nodes[node].driver.region_mut(rid);
        r.use_count += 1;
        r.last_use = now;
        Ok((rid, owned))
    }

    /// LRU-evicted cache entry: undeclare now if idle, else defer.
    fn evict_cached_region(&mut self, proc: ProcId, node: usize, victim: RegionId) {
        self.nodes[node].counters.bump("cache_evictions");
        self.emit(node, Some(proc), TraceEvent::CacheEvict { region: victim });
        if self.nodes[node].driver.region(victim).use_count == 0 {
            let pages = self.nodes[node].driver.region(victim).pinned_pages();
            let cost = self.cfg.profile.unpin_cost(pages);
            self.submit_kernel_work(
                proc,
                cost,
                Work::UnpinRegion {
                    node,
                    region: victim,
                    owner: proc,
                    undeclare: true,
                },
            );
        } else {
            self.xfers.deferred_undeclare.insert((node, victim.0));
        }
    }

    /// Drop one communication's use of a region; schedule unpin/undeclare
    /// when appropriate.
    fn release_region(&mut self, proc: ProcId, node: usize, region: RegionId, owned: bool) {
        let now = self.now;
        let r = self.nodes[node].driver.region_mut(region);
        assert!(r.use_count > 0, "release of unused region");
        r.use_count -= 1;
        r.last_use = now;
        let idle = r.use_count == 0;
        let pages = r.pinned_pages();
        if idle {
            // The region just became an eviction candidate (it may be
            // unpinned/undeclared below, which the LRU tolerates — heap
            // entries are validated on pop).
            self.nodes[node].driver.note_region_idle(region);
        }
        if idle && (owned || self.xfers.deferred_undeclare.remove(&(node, region.0))) {
            self.xfers.pin_plans.remove(&(node, region.0));
            let cost = self.cfg.profile.unpin_cost(pages);
            self.submit_kernel_work(
                proc,
                cost,
                Work::UnpinRegion {
                    node,
                    region,
                    owner: proc,
                    undeclare: true,
                },
            );
        }
    }

    fn on_unpin_region(&mut self, node: usize, region: RegionId, owner: ProcId, undeclare: bool) {
        if !self.nodes[node].driver.is_declared(region) {
            return;
        }
        // A crash reap may have freed this region id and a later declare
        // recycled it: a stale queued unpin must not touch the new owner's
        // region.
        if self.nodes[node].driver.region(region).owner != owner {
            return;
        }
        // A late communication may have re-acquired the region (cached
        // modes only re-use via the cache, which no longer knows it, so
        // this only guards pathological interleavings).
        if self.nodes[node].driver.region(region).use_count > 0 {
            return;
        }
        let n = &mut self.nodes[node];
        let pages = n.driver.unpin_region(&mut n.mem, region);
        n.counters.add("unpin_pages", pages);
        if undeclare {
            n.driver.undeclare(&mut n.mem, region);
            self.emit(node, None, TraceEvent::RegionUndeclare { region });
        }
        self.xfers.pin_plans.remove(&(node, region.0));
    }

    // ================== on-demand pinning machinery ==================

    /// Pages needed to cover the first `len` bytes of `region`.
    pub(crate) fn pin_target(&self, node: usize, region: RegionId, len: u64) -> u64 {
        let r = self.nodes[node].driver.region(region);
        let len = len.min(r.layout.total_len());
        let (_, last) = r.layout.page_index_span(0, len);
        last + 1
    }

    /// Ensure the region's pin cursor is heading for `target_pages`.
    /// Returns true if `waiter`'s threshold is already satisfied (the
    /// caller runs the action itself); otherwise the waiter queues.
    pub(crate) fn ensure_pinned(
        &mut self,
        node: usize,
        proc: ProcId,
        region: RegionId,
        target_pages: u64,
        waiter: Option<PinWaiter>,
    ) -> bool {
        // The protocol-visible cursor: stale pages awaiting a deferred
        // unpin are excluded, so an invalidated tail reads as unpinned
        // here even while its frames are still attached.
        let r = self.nodes[node].driver.region(region);
        let (cursor, generation) = (r.valid_pages(), r.generation);
        let plan = self
            .xfers
            .pin_plans
            .entry((node, region.0))
            .or_insert_with(|| PinPlan::new(proc));
        plan.target = plan.target.max(target_pages);
        plan.proc = proc;
        let satisfied = waiter.is_none_or(|w| cursor >= w.threshold_pages);
        if let Some(w) = waiter {
            if !satisfied {
                plan.waiters.push(w);
            }
        }
        let target = plan.target;
        let in_progress = plan.in_progress;
        if let Some(w) = waiter {
            if !satisfied {
                // The transfer's protocol action is now queued behind the
                // pin cursor: open its pin-wait interval.
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::PinWaitStart {
                        xfer: w.xfer,
                        region,
                    },
                );
            }
        }
        if cursor < target && !in_progress {
            let now = self.now;
            let plan = self
                .xfers
                .pin_plans
                .get_mut(&(node, region.0))
                .expect("plan");
            plan.in_progress = true;
            plan.started_at = Some(now);
            // Stamp the pass with the region generation it saw: a
            // notifier invalidation bumps the region's copy, and the
            // mismatch restarts the pass at its next chunk.
            plan.generation = generation;
            // Mirror into the driver's region state: the notifier and the
            // pressure evictor must see that a pin pass is in flight even
            // while the cursor still reads zero.
            self.nodes[node]
                .driver
                .region_mut(region)
                .pinning_in_progress = true;
            self.emit(
                node,
                Some(proc),
                TraceEvent::PinStart {
                    region,
                    target_pages: target,
                },
            );
            self.submit_pin_chunk(node, proc, region, cursor, target);
        } else if cursor >= target {
            // Nothing to pin; a waiterless plan can go away.
            let plan = self
                .xfers
                .pin_plans
                .get_mut(&(node, region.0))
                .expect("plan");
            if plan.waiters.is_empty() && !plan.in_progress {
                self.xfers.pin_plans.remove(&(node, region.0));
            }
        }
        satisfied
    }

    fn submit_pin_chunk(
        &mut self,
        node: usize,
        proc: ProcId,
        region: RegionId,
        cursor: u64,
        target: u64,
    ) {
        let pages = self.cfg.pin_chunk_pages.min(target - cursor);
        // Per-tenant hard cap, enforced before the chunk is charged: a
        // tenant out of headroom pays with its own idle regions and,
        // failing that, has the pass denied — it never pushes the whole
        // node into pressure eviction of other tenants' working sets.
        // In-flight chunks of the same tenant count via their plans'
        // reservations, so two passes racing the last of the headroom
        // cannot both squeeze through.
        if let Some(q) = self.nodes[node].driver.enforced_quota() {
            let owner = self.nodes[node].driver.region(region).owner;
            let reserved = self.reserved_pages(node, owner, region);
            let over_cap =
                |d: &crate::Driver| d.pinned_pages_of(owner) + reserved + pages > q.hard_cap;
            if over_cap(&self.nodes[node].driver) {
                // Cheapest headroom first: stale frames parked for the
                // deferred drain, then the tenant's own idle regions.
                if self.nodes[node].driver.has_deferred() {
                    self.close_notifier_epoch(node);
                }
                let keep = q.hard_cap.saturating_sub(reserved + pages);
                let evicted = {
                    let n = &mut self.nodes[node];
                    let evicted = n.driver.pressure_evict_tenant(&mut n.mem, owner, keep);
                    for (_, p) in &evicted {
                        n.counters.add("pressure_unpinned_pages", *p);
                    }
                    evicted
                };
                for (rid, p) in evicted {
                    self.emit(
                        node,
                        None,
                        TraceEvent::PressureUnpin {
                            region: rid,
                            pages: p,
                        },
                    );
                }
                if over_cap(&self.nodes[node].driver) {
                    self.deny_pin(node, owner, region, pages);
                    return;
                }
            }
        }
        // Under budget pressure, drain the deferred-unpin queue before
        // reaching for the LRU: already-invalidated pages are the
        // cheapest headroom, and evicting a live region while stale
        // frames sit parked would be strictly worse.
        let over_budget = self.cfg.pinned_pages_limit.is_some_and(|lim| {
            let n = &self.nodes[node];
            n.driver.has_deferred() && n.driver.pinned_pages_total() + pages > lim as u64
        });
        if over_budget {
            self.close_notifier_epoch(node);
        }
        // Enforce the pinned-pages ceiling before growing the pin set.
        let now = self.now;
        let evicted = {
            let n = &mut self.nodes[node];
            let evicted = n.driver.pressure_evict(&mut n.mem, pages, now, Some(proc));
            for (_, p) in &evicted {
                n.counters.add("pressure_unpinned_pages", *p);
            }
            evicted
        };
        for (rid, p) in evicted {
            self.emit(
                node,
                None,
                TraceEvent::PressureUnpin {
                    region: rid,
                    pages: p,
                },
            );
        }
        // The chunk is on its way to a kernel core: reserve its pages
        // against the tenant's cap until `on_pin_chunk` settles them.
        if let Some(plan) = self.xfers.pin_plans.get_mut(&(node, region.0)) {
            plan.reserved = pages;
        }
        let duration = self.cfg.profile.pin_cost(pages, cursor == 0);
        self.submit_kernel_work(proc, duration, Work::PinChunk { node, region });
    }

    /// Pages reserved by in-flight pin chunks of `owner`'s *other* plans
    /// on `node` (the plan for `region` is the one being charged here).
    fn reserved_pages(&self, node: usize, owner: ProcId, region: RegionId) -> u64 {
        self.xfers
            .pin_plans
            .iter()
            .filter(|((n, rid), _)| {
                *n == node
                    && *rid != region.0
                    && self.nodes[node]
                        .driver
                        .try_region(RegionId(*rid))
                        .is_some_and(|r| r.owner == owner)
            })
            .map(|(_, p)| p.reserved)
            .sum()
    }

    /// Deny a pin pass that cannot proceed without busting its tenant's
    /// hard cap: release whatever the pass holds, account the denial, and
    /// fail its transfers cleanly. The application surface is the same as
    /// any pin failure — `AppEvent::Failed` — so the tenant sees a clean
    /// error instead of a hang, and no other tenant's working set is
    /// stolen to cover for it.
    fn deny_pin(&mut self, node: usize, owner: ProcId, region: RegionId, pages: u64) {
        let released = {
            let n = &mut self.nodes[node];
            n.driver.unpin_region(&mut n.mem, region)
        };
        if released > 0 {
            self.nodes[node].counters.add("unpin_pages", released);
        }
        if let Some(r) = self.nodes[node].driver.try_region_mut(region) {
            r.pinning_in_progress = false;
        }
        self.xfers.pin_plans.remove(&(node, region.0));
        self.nodes[node].counters.bump("quota_denials");
        self.nodes[node].driver.note_quota_denial(owner);
        self.emit(node, Some(owner), TraceEvent::PinDenied { region, pages });
        self.fail_region_users(node, region, "pin quota exceeded");
    }

    fn on_pin_chunk(&mut self, node: usize, region: RegionId) {
        if !self.nodes[node].driver.is_declared(region) {
            self.xfers.pin_plans.remove(&(node, region.0));
            return;
        }
        let Some(plan) = self.xfers.pin_plans.get_mut(&(node, region.0)) else {
            return; // plan cancelled (transfer completed/aborted)
        };
        // The submitted chunk has arrived: its reservation against the
        // tenant's cap settles into the attributed pin count below.
        plan.reserved = 0;
        let (target, proc, plan_gen) = (plan.target, plan.proc, plan.generation);
        let (region_gen, cursor) = {
            let r = self.nodes[node].driver.region(region);
            (r.generation, r.valid_pages())
        };
        if region_gen != plan_gen {
            // A notifier invalidation landed while this pass was in
            // flight: the chunk just charged was computed against a
            // cursor the invalidation has since rewound, and pinning
            // blindly from here would re-pin just-invalidated pages.
            // Abort the pass and restart it from the rewound cursor —
            // the simulated `mmu_notifier_retry`.
            let plan = self
                .xfers
                .pin_plans
                .get_mut(&(node, region.0))
                .expect("plan");
            plan.generation = region_gen;
            self.nodes[node].counters.bump("pin_pass_restarts");
            if cursor < target {
                self.submit_pin_chunk(node, proc, region, cursor, target);
            } else {
                self.finish_pin_plan(node, region, cursor);
            }
            return;
        }
        if cursor >= target {
            self.finish_pin_plan(node, region, cursor);
            return;
        }
        let want = self.cfg.pin_chunk_pages.min(target - cursor);
        let per_page = self.cfg.per_page_pin;
        let (result, pin_calls, stale_released, attached_before) = {
            let n = &mut self.nodes[node];
            let calls_before = n.mem.pin_calls();
            let r = n.driver.region(region);
            // The pin call releases the region's stale tail on its way
            // in (cursor rewind); read it first so the unpin ledger and
            // the charged cost stay exact. The total attached count is
            // what a failed pass rolls back below.
            let stale = r.stale_pages();
            let attached = r.pinned_pages();
            let result = n.driver.pin_chunk(&mut n.mem, region, want, per_page);
            (result, n.mem.pin_calls() - calls_before, stale, attached)
        };
        self.nodes[node].counters.add("pin_syscalls", pin_calls);
        if stale_released > 0 {
            self.nodes[node].counters.add("unpin_pages", stale_released);
        }
        match result {
            Err(_) => {
                // A mid-run partial-pin failure rolled back *everything*
                // the region held: the stale tail (credited above) plus
                // the previously valid pages and whatever this chunk had
                // pinned before dying. The valid pages must hit the unpin
                // ledger too, or every failed pass permanently leaks
                // budget headroom.
                let rolled_back = attached_before - stale_released;
                if rolled_back > 0 {
                    self.nodes[node].counters.add("unpin_pages", rolled_back);
                }
                self.xfers.pin_plans.remove(&(node, region.0));
                self.nodes[node].counters.bump("pin_failures");
                self.fail_region_users(node, region, "pinning failed (invalid region)");
            }
            Ok(mut progress) => {
                self.nodes[node]
                    .counters
                    .add("pin_pages", progress.pages_pinned);
                self.nodes[node].counters.bump("pin_chunks");
                // The pin itself may have broken COW mappings (write
                // faults under get_user_pages): dispatch those notifier
                // events like any other invalidation, so *other* regions
                // pinned over the same pages learn their frames moved.
                // This region is safe from its own events — its PTEs now
                // point at the frames it just pinned, which the stale
                // filter recognizes.
                let cow_events = std::mem::take(&mut progress.cow_events);
                if !cow_events.is_empty() {
                    self.dispatch_notifier_events(node, &cow_events);
                }
                let cursor = self.nodes[node].driver.region(region).valid_pages();
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::PinChunk {
                        region,
                        pages: progress.pages_pinned,
                        cursor_pages: cursor,
                    },
                );
                // Fire satisfied waiters.
                let fired: Vec<PinWaiter> = {
                    let plan = self
                        .xfers
                        .pin_plans
                        .get_mut(&(node, region.0))
                        .expect("plan");
                    let mut fired = Vec::new();
                    plan.waiters.retain(|w| {
                        if cursor >= w.threshold_pages {
                            fired.push(*w);
                            false
                        } else {
                            true
                        }
                    });
                    fired
                };
                for w in fired {
                    self.emit(
                        node,
                        Some(proc),
                        TraceEvent::PinWaitEnd {
                            xfer: w.xfer,
                            region,
                        },
                    );
                    self.run_pin_action(w.action);
                }
                let target = self
                    .xfers
                    .pin_plans
                    .get(&(node, region.0))
                    .map(|p| p.target)
                    .unwrap_or(0);
                if cursor < target {
                    self.submit_pin_chunk(node, proc, region, cursor, target);
                } else {
                    self.finish_pin_plan(node, region, cursor);
                }
            }
        }
    }

    fn finish_pin_plan(&mut self, node: usize, region: RegionId, cursor: u64) {
        let now = self.now;
        if let Some(r) = self.nodes[node].driver.try_region_mut(region) {
            r.pinning_in_progress = false;
        }
        // With the pin pass over, an idle pinned region is an eviction
        // candidate: file it with the pressure LRU.
        self.nodes[node].driver.note_region_idle(region);
        if let Some(plan) = self.xfers.pin_plans.get_mut(&(node, region.0)) {
            let was_running = plan.in_progress;
            plan.in_progress = false;
            if let Some(started) = plan.started_at.take() {
                self.metrics.pin_latency.record(now.duration_since(started));
                self.metrics.pin_burst_pages.push(cursor as f64);
            }
            let proc = plan.proc;
            if plan.waiters.is_empty() {
                self.xfers.pin_plans.remove(&(node, region.0));
            }
            if was_running {
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::PinComplete {
                        region,
                        cursor_pages: cursor,
                    },
                );
            }
        }
    }

    fn run_pin_action(&mut self, action: PinAction) {
        match action {
            PinAction::SendRndv(msg) => {
                if self.xfers.send.contains_key(&msg) {
                    self.send_rndv(msg);
                }
            }
            PinAction::RecvStart(pull) => {
                if self.xfers.recv.contains_key(&pull) {
                    self.recv_start(pull);
                }
            }
        }
    }

    /// After an MMU-notifier invalidation, any transfer still using the
    /// region needs its pin plan restarted (repin on demand).
    pub(crate) fn restart_pin_plan_if_needed(&mut self, node: usize, region: RegionId) {
        let mut need: Option<(ProcId, u64)> = None;
        for x in self.xfers.send.values() {
            if x.node == node && x.region == region {
                let t = self.pin_target(node, region, x.total_len);
                let cur = need.map_or(0, |(_, t)| t);
                need = Some((x.proc, t.max(cur)));
            }
        }
        for x in self.xfers.recv.values() {
            if x.node == node && x.region == region {
                let t = self.pin_target(node, region, x.xfer_len);
                let cur = need.map_or(0, |(_, t)| t);
                need = Some((x.proc, t.max(cur)));
            }
        }
        if let Some((proc, target)) = need {
            self.emit(
                node,
                Some(proc),
                TraceEvent::Repin {
                    region,
                    target_pages: target,
                },
            );
            self.ensure_pinned(node, proc, region, target, None);
        }
    }

    /// Close the node's deferred-unpin flush epoch: drain the driver's
    /// coalesced queue in one batch, counting released and cancelled
    /// entries separately. Called at epoch-timer expiry and early under
    /// pin-budget pressure.
    pub(crate) fn close_notifier_epoch(&mut self, node: usize) {
        let (released, cancelled) = {
            let n = &mut self.nodes[node];
            n.driver.drain_deferred(&mut n.mem)
        };
        if released.is_empty() && cancelled.is_empty() {
            return;
        }
        self.metrics.record_notifier_drain_batch();
        {
            let n = &mut self.nodes[node];
            n.counters.bump("notifier_drain_batches");
            for (_, pages) in &released {
                n.counters.bump("notifier_region_unpins");
                n.counters.add("notifier_unpinned_pages", *pages);
                n.counters.add("unpin_pages", *pages);
            }
            n.counters.add("notifier_cancelled", cancelled.len() as u64);
        }
        for (rid, pages) in released {
            self.emit(node, None, TraceEvent::NotifierDrain { region: rid, pages });
        }
        for rid in cancelled {
            self.metrics.record_notifier_cancelled();
            self.emit(node, None, TraceEvent::NotifierCancel { region: rid });
        }
    }

    /// Abort every transfer that depends on a region whose pinning failed.
    fn fail_region_users(&mut self, node: usize, region: RegionId, reason: &'static str) {
        let sends: Vec<MsgId> = self
            .xfers
            .send
            .iter()
            .filter(|(_, x)| x.node == node && x.region == region)
            .map(|(m, _)| *m)
            .collect();
        for msg in sends {
            self.fail_send(msg, reason);
        }
        let recvs: Vec<PullId> = self
            .xfers
            .recv
            .iter()
            .filter(|(_, x)| x.node == node && x.region == region)
            .map(|(p, _)| *p)
            .collect();
        for pull in recvs {
            self.fail_recv(pull, reason);
        }
    }

    fn fail_send(&mut self, msg: MsgId, reason: &'static str) {
        let Some(x) = self.xfers.send.remove(&msg) else {
            return;
        };
        self.cancel_timer(x.rndv_timer);
        self.release_region(x.proc, x.node, x.region, x.owned);
        self.nodes[x.node].counters.bump("requests_failed");
        self.notify_app(x.proc, AppEvent::Failed(x.req, reason));
    }

    fn fail_recv(&mut self, pull: PullId, reason: &'static str) {
        let Some(x) = self.xfers.recv.remove(&pull) else {
            return;
        };
        self.xfers.recv_by_msg.remove(&x.msg);
        self.cancel_timer(x.stall_timer);
        self.release_region(x.proc, x.node, x.region, x.owned);
        self.nodes[x.node].counters.bump("requests_failed");
        self.notify_app(x.proc, AppEvent::Failed(x.req, reason));
    }

    // ================== timers ==================

    fn on_timer(&mut self, token: TimerToken) {
        match token {
            TimerToken::RndvRetrans(msg) => {
                let Some(x) = self.xfers.send.get_mut(&msg) else {
                    return;
                };
                x.retries += 1;
                let (retries, pull_seen, node, proc, xfer, peer) =
                    (x.retries, x.pull_seen, x.node, x.proc, x.xfer, x.peer);
                if self.procs[proc.0 as usize].crashed {
                    return; // zombie entry (leaky fault injection): let it rot
                }
                if self.endpoint_gone(peer) {
                    // The peer died: burning the whole retry budget against
                    // a dead endpoint only delays the inevitable. Fail now.
                    self.nodes[node].counters.bump("peer_dead_aborts");
                    self.fail_send(msg, "peer crashed");
                    return;
                }
                if retries > self.cfg.max_retries {
                    self.emit(
                        node,
                        Some(proc),
                        TraceEvent::RetryExhausted {
                            kind: RetransKind::Rndv,
                            id: msg.0,
                            xfer,
                        },
                    );
                    // Before `pull_seen` the rendezvous itself never got
                    // through; after it, the pull/notify tail went silent —
                    // either way the handle errors instead of hanging.
                    let reason = if pull_seen {
                        "transfer completion timed out"
                    } else {
                        "rendezvous timed out"
                    };
                    self.fail_send(msg, reason);
                    return;
                }
                if pull_seen {
                    // Completion watchdog: the transfer is in the
                    // receiver's hands (it pulls at its own pace), so
                    // there is nothing to resend — just keep waiting for
                    // the notify with backoff. Every incoming pull request
                    // resets `retries`, so only total silence exhausts it.
                    self.nodes[node].counters.bump("send_watchdog_timeouts");
                    let timeout =
                        self.retrans_timeout(node, RetransKind::Rndv, msg.0, xfer, retries);
                    let t = self.arm_timer(timeout, TimerToken::RndvRetrans(msg));
                    if let Some(x) = self.xfers.send.get_mut(&msg) {
                        x.rndv_timer = Some(t);
                    } else {
                        self.queue.cancel(t);
                    }
                    return;
                }
                self.nodes[node].counters.bump("rndv_retrans");
                self.metrics.record_retransmit();
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::Retransmit {
                        kind: RetransKind::Rndv,
                        id: msg.0,
                        xfer,
                    },
                );
                self.send_rndv(msg);
            }
            TimerToken::EagerRetrans(msg) => {
                let Some(tx) = self.xfers.eager_tx.get_mut(&msg) else {
                    return;
                };
                tx.retries += 1;
                let (retries, proc, req, xfer, peer) =
                    (tx.retries, tx.proc, tx.req, tx.xfer, tx.peer);
                let node = self.procs[proc.0 as usize].node;
                if self.procs[proc.0 as usize].crashed {
                    return; // zombie entry (leaky fault injection): let it rot
                }
                if self.endpoint_gone(peer) {
                    self.xfers.eager_tx.remove(&msg);
                    self.nodes[node].counters.bump("peer_dead_aborts");
                    self.nodes[node].counters.bump("requests_failed");
                    // SendDone already fired at copy-out (MX semantics);
                    // the handle still reports the late, clean error.
                    self.notify_app(proc, AppEvent::Failed(req, "peer crashed"));
                    return;
                }
                if retries > self.cfg.max_retries {
                    self.xfers.eager_tx.remove(&msg);
                    self.counters.bump("eager_abandoned");
                    self.nodes[node].counters.bump("requests_failed");
                    self.emit(
                        node,
                        Some(proc),
                        TraceEvent::RetryExhausted {
                            kind: RetransKind::Eager,
                            id: msg.0,
                            xfer,
                        },
                    );
                    // The app saw SendDone at copy-out (MX semantics), but
                    // the handle still carries a late, clean error instead
                    // of the message silently vanishing.
                    self.notify_app(proc, AppEvent::Failed(req, "eager send unacked"));
                    return;
                }
                self.counters.bump("eager_retrans");
                self.metrics.record_retransmit();
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::Retransmit {
                        kind: RetransKind::Eager,
                        id: msg.0,
                        xfer,
                    },
                );
                self.transmit_eager_frames(msg);
                let timeout = self.retrans_timeout(node, RetransKind::Eager, msg.0, xfer, retries);
                let t = self.arm_timer(timeout, TimerToken::EagerRetrans(msg));
                if let Some(tx) = self.xfers.eager_tx.get_mut(&msg) {
                    tx.timer = Some(t);
                    tx.sent_at = self.now;
                } else {
                    self.queue.cancel(t);
                }
            }
            TimerToken::PullStall(pull) => {
                let Some(x) = self.xfers.recv.get_mut(&pull) else {
                    return;
                };
                x.retries += 1;
                let (retries, node, proc, xfer, peer) = (x.retries, x.node, x.proc, x.xfer, x.peer);
                if self.procs[proc.0 as usize].crashed {
                    return; // zombie entry (leaky fault injection): let it rot
                }
                if self.endpoint_gone(peer) {
                    self.nodes[node].counters.bump("peer_dead_aborts");
                    self.fail_recv(pull, "peer crashed");
                    return;
                }
                if retries > self.cfg.max_retries {
                    self.emit(
                        node,
                        Some(proc),
                        TraceEvent::RetryExhausted {
                            kind: RetransKind::PullStall,
                            id: pull.0,
                            xfer,
                        },
                    );
                    self.fail_recv(pull, "pull transfer stalled");
                    return;
                }
                self.nodes[node].counters.bump("pull_stall_timeouts");
                self.metrics.record_retransmit();
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::Retransmit {
                        kind: RetransKind::PullStall,
                        id: pull.0,
                        xfer,
                    },
                );
                // Re-request everything outstanding.
                let stalled: Vec<u32> = {
                    let x = &self.xfers.recv[&pull];
                    x.blocks
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| b.requested && !b.complete())
                        .map(|(i, _)| i as u32)
                        .collect()
                };
                for b in stalled {
                    self.rerequest_block(pull, b);
                }
                let timeout =
                    self.retrans_timeout(node, RetransKind::PullStall, pull.0, xfer, retries);
                let timer = self.arm_timer(timeout, TimerToken::PullStall(pull));
                if let Some(x) = self.xfers.recv.get_mut(&pull) {
                    x.stall_timer = Some(timer);
                } else {
                    self.queue.cancel(timer);
                }
            }
            TimerToken::NotifierEpoch(node) => {
                // Epoch over: one batched drain of everything that
                // deferred since the timer was armed. The flag clears
                // first so a deferral caused by the drain's own app
                // callbacks (none today) would open a fresh epoch.
                self.nodes[node].epoch_armed = false;
                self.close_notifier_epoch(node);
            }
            TimerToken::NotifyRetrans(msg) => {
                let Some(p) = self.xfers.notify_pending.get_mut(&msg) else {
                    return;
                };
                p.retries += 1;
                let (retries, proc, peer, xfer) = (p.retries, p.proc, p.peer, p.xfer);
                let node = self.procs[proc.0 as usize].node;
                if self.procs[proc.0 as usize].crashed {
                    return; // zombie entry (leaky fault injection): let it rot
                }
                if self.endpoint_gone(peer) {
                    // The receive already completed locally; the dead
                    // sender will never ack, so just drop the state.
                    self.xfers.notify_pending.remove(&msg);
                    self.nodes[node].counters.bump("peer_dead_aborts");
                    return;
                }
                if retries > self.cfg.max_retries {
                    self.xfers.notify_pending.remove(&msg);
                    self.counters.bump("notify_abandoned");
                    // The receive already completed locally; the sender's
                    // completion watchdog turns this silence into a clean
                    // send-side failure, so nothing hangs.
                    self.emit(
                        node,
                        Some(proc),
                        TraceEvent::RetryExhausted {
                            kind: RetransKind::Notify,
                            id: msg.0,
                            xfer,
                        },
                    );
                    return;
                }
                self.counters.bump("notify_retrans");
                self.metrics.record_retransmit();
                self.emit(
                    node,
                    Some(proc),
                    TraceEvent::Retransmit {
                        kind: RetransKind::Notify,
                        id: msg.0,
                        xfer,
                    },
                );
                let f = self.frame(proc, peer, WireMsg::Notify { msg, xfer });
                self.transmit(f);
                let timeout = self.retrans_timeout(node, RetransKind::Notify, msg.0, xfer, retries);
                let t = self.arm_timer(timeout, TimerToken::NotifyRetrans(msg));
                if let Some(p) = self.xfers.notify_pending.get_mut(&msg) {
                    p.timer = t;
                } else {
                    self.queue.cancel(t);
                }
            }
        }
    }

    fn rerequest_guard(&self) -> SimDuration {
        // Enough for a round trip plus one block's serialization: frames
        // still legitimately in flight are not "missing" yet.
        let static_guard = self.cfg.net.latency * 4
            + self
                .cfg
                .net
                .bandwidth
                .time_for_bytes(self.cfg.pull_block * 2);
        if !self.cfg.adaptive_retransmit {
            return static_guard;
        }
        // Under adaptive retransmission the guard also tracks the measured
        // RTO: a congested or lossy fabric inflates queueing delay well past
        // the nominal round trip, and re-requesting frames that are merely
        // late produces duplicate traffic that makes the congestion worse.
        static_guard
            .max(self.rtt.rto().unwrap_or(SimDuration::ZERO))
            .max(self.cfg.retransmit_min)
    }
}
