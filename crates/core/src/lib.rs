//! # openmx-core — the paper's contribution, end to end
//!
//! A faithful reconstruction of the Open-MX stack of Goglin's
//! *"Decoupling Memory Pinning from the Application with Overlapped
//! on-Demand Pinning and MMU Notifiers"* (CAC/IPDPS 2009), built on the
//! workspace's memory ([`simmem`]) and network ([`simnet`]) substrates:
//!
//! * [`wire`] — the MXoE protocol: eager, rendezvous, pull/pull-reply,
//!   notify, acks and retransmission;
//! * [`region`] — user regions (vectorial) with the **decoupled pin state
//!   machine**: declaration never pins; the driver pins on demand, in
//!   chunks, behind a cursor;
//! * [`cache`] — the user-space LRU region cache translating segment
//!   vectors into integer descriptors;
//! * [`driver`] — kernel-side region table, **MMU-notifier invalidation**
//!   and pinned-page pressure eviction;
//! * [`endpoint`] — MX matching (posted/unexpected, masks);
//! * [`engine`] — the deterministic cluster engine that charges every
//!   cost (syscalls, pin chunks, bottom-half packet work, copies, wire
//!   time) to the right core at the right virtual instant, implementing
//!   all five pinning strategies of the paper's evaluation;
//! * [`config`] — Table 1 CPU cost profiles and every knob the paper's
//!   experiments sweep;
//! * [`obs`] — observability: typed trace events over the whole pinning
//!   lifecycle, a bounded ring-buffer tracer, latency histograms,
//!   Chrome-trace/CSV exporters, and the causal span builder that
//!   correlates sender- and receiver-side records of one transfer (via
//!   [`wire::XferId`]) into cross-node span trees with critical-path
//!   attribution.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod driver;
pub mod endpoint;
pub mod engine;
mod index;
pub mod obs;
pub mod region;
pub mod sync;
pub mod wire;

pub use cache::{CacheOutcome, RegionCache};
pub use config::{CpuProfile, OpenMxConfig, PinningMode};
pub use driver::{Driver, PinQuota, RegionId};
pub use endpoint::{Endpoint, EndpointAddr, RequestId};
pub use engine::{AppEvent, Cluster, Ctx, OverlapHint, ProcId, Process};
pub use obs::{
    build_spans, chrome_spans_json, per_proc_latency, post_mortem_json, CacheStats, ChildSpan,
    CriticalPath, DriverStats, FaultKind, Metrics, ProcLatencyStats, RetransKind, TenantStats,
    TraceEvent, TraceRecord, Tracer, XferSpan,
};
pub use region::{DeclareError, DriverRegion, RegionLayout, Segment};
pub use sync::{ConcurrentDriver, EpochCollector, EpochHandle, EpochMutation, SharedRegionCache};
pub use wire::{Frame, MsgId, PullId, WireMsg, XferId};
