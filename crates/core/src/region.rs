//! User regions and the decoupled pin state machine.
//!
//! A *user region* is the driver-side object behind the integer descriptor
//! user space manipulates: a vector of `(addr, len)` segments in one
//! address space (§3.2 — regions may be vectorial). Declaration never pins
//! anything. The driver pins **on demand**, in page chunks and in region
//! order, which is what makes overlapped pinning possible: the in-order
//! data transfer only ever needs the pages behind the *pin cursor*.
//!
//! Accessors take the byte-offset view: `read`/`write` at a region offset
//! translate to physical frames of the pinned pages, and fail with
//! [`RegionAccessError::NotPinned`] when the cursor has not reached the
//! touched pages — the overlap-miss case the engine turns into a packet
//! drop.

use simcore::SimTime;
use simmem::{AsId, MemError, Memory, NotifierEvent, Pfn, VirtAddr, Vpn, VpnRange, PAGE_SIZE};

use crate::engine::ProcId;

/// One contiguous piece of a (possibly vectorial) user region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Segment {
    /// Start address (need not be page aligned).
    pub addr: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

impl Segment {
    /// Pages covering this segment.
    pub fn page_range(&self) -> VpnRange {
        VpnRange::covering(self.addr, self.len)
    }
}

#[derive(Clone, Debug)]
struct SegMeta {
    seg: Segment,
    /// Byte offset of this segment within the region.
    byte_start: u64,
    /// Index of the segment's first page in the flattened page list.
    page_start: u64,
}

/// The immutable shape of a region: segments plus derived page geometry.
#[derive(Clone, Debug)]
pub struct RegionLayout {
    segs: Vec<SegMeta>,
    total_len: u64,
    total_pages: u64,
}

/// Why a region declaration was rejected at the syscall boundary.
///
/// User space hands the driver an arbitrary segment vector; a hostile or
/// buggy caller must get an error back, never a kernel panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeclareError {
    /// Every segment had zero length — there is nothing to pin.
    EmptyRegion,
    /// The concurrent driver's fixed-capacity region table is full.
    TableFull,
    /// A driver lock was poisoned by a panicking thread; the declare
    /// degrades to a counted failure instead of propagating the panic.
    DriverUnavailable,
}

impl std::fmt::Display for DeclareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeclareError::EmptyRegion => write!(f, "empty region (all segments zero-length)"),
            DeclareError::TableFull => write!(f, "region table full"),
            DeclareError::DriverUnavailable => {
                write!(f, "driver lock poisoned; declare refused")
            }
        }
    }
}

impl RegionLayout {
    /// Build a layout from segments (empty segments are dropped).
    ///
    /// # Panics
    /// Panics if the region has zero total length; use
    /// [`RegionLayout::try_new`] for untrusted input.
    pub fn new(segments: &[Segment]) -> Self {
        Self::try_new(segments).expect("empty region")
    }

    /// Build a layout from segments (empty segments are dropped), rejecting
    /// a region with zero total length instead of panicking.
    pub fn try_new(segments: &[Segment]) -> Result<Self, DeclareError> {
        let mut segs = Vec::with_capacity(segments.len());
        let mut byte_start = 0u64;
        let mut page_start = 0u64;
        for seg in segments.iter().filter(|s| s.len > 0) {
            let pages = seg.page_range().len();
            segs.push(SegMeta {
                seg: *seg,
                byte_start,
                page_start,
            });
            byte_start += seg.len;
            page_start += pages;
        }
        if byte_start == 0 {
            return Err(DeclareError::EmptyRegion);
        }
        Ok(RegionLayout {
            segs,
            total_len: byte_start,
            total_pages: page_start,
        })
    }

    /// Total bytes across all segments.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Total pages in the flattened page list.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// The segments of this region.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.segs.iter().map(|m| m.seg)
    }

    /// The virtual page behind flattened page index `idx`.
    pub fn vpn_of_page(&self, idx: u64) -> Vpn {
        let m = self
            .segs
            .iter()
            .rev()
            .find(|m| m.page_start <= idx)
            .expect("page index out of range");
        let rel = idx - m.page_start;
        debug_assert!(rel < m.seg.page_range().len(), "page index out of range");
        Vpn(m.seg.addr.page_floor().vpn().0 + rel)
    }

    /// Visit the `(page_index, vpn, page_offset, chunk_len)` pieces
    /// covering region bytes `[offset, offset + len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the region.
    pub fn for_each_chunk(&self, offset: u64, len: u64, mut f: impl FnMut(u64, Vpn, u64, u64)) {
        // checked_add: a hostile offset near u64::MAX must not wrap past
        // the bound and walk the segment list with garbage offsets.
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= self.total_len),
            "region access out of bounds: {offset}+{len} > {}",
            self.total_len
        );
        let mut remaining = len;
        let mut off = offset;
        for m in &self.segs {
            if remaining == 0 {
                break;
            }
            let seg_end = m.byte_start + m.seg.len;
            if off >= seg_end {
                continue;
            }
            let rel = off - m.byte_start;
            let in_seg = (m.seg.len - rel).min(remaining);
            let base_vpn = m.seg.addr.page_floor().vpn();
            for (vpn, page_off, n) in simmem::page_chunks(m.seg.addr.add(rel), in_seg) {
                let page_idx = m.page_start + (vpn.0 - base_vpn.0);
                f(page_idx, vpn, page_off, n);
            }
            off += in_seg;
            remaining -= in_seg;
        }
        debug_assert_eq!(remaining, 0);
    }

    /// The flattened page indexes covering bytes `[offset, offset+len)`,
    /// as an inclusive range `(first, last)`.
    pub fn page_index_span(&self, offset: u64, len: u64) -> (u64, u64) {
        assert!(len > 0, "empty span");
        let mut first = u64::MAX;
        let mut last = 0;
        self.for_each_chunk(offset, len, |idx, _, _, _| {
            first = first.min(idx);
            last = last.max(idx);
        });
        (first, last)
    }

    /// True if any page of the region falls in `range` of space `space`
    /// (MMU-notifier routing test).
    pub fn intersects(&self, range: &VpnRange) -> bool {
        self.segs.iter().any(|m| m.seg.page_range().overlaps(range))
    }
}

/// Errors from region accessors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionAccessError {
    /// The touched pages are beyond the pin cursor (overlap miss) or the
    /// region is not pinned at all.
    NotPinned,
}

/// Pin progress report from [`DriverRegion::pin_next_chunk`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PinProgress {
    /// Pages pinned by this chunk.
    pub pages_pinned: u64,
    /// True when the whole region is now pinned.
    pub complete: bool,
    /// True if this chunk was the first of the region (pays the base cost).
    pub first_chunk: bool,
    /// Notifier events the pin itself generated (COW breaks under
    /// `get_user_pages` write faults). The caller must dispatch these to
    /// the driver like any other MMU-notifier invalidation: *other*
    /// regions pinned over the same pages still hold the pre-break frames
    /// and have to learn their PTEs moved. Dropping them is the silent
    /// stale-frame bug the `StaleVisible` oracle catches.
    pub cow_events: Vec<NotifierEvent>,
}

/// A declared region inside the driver, with its decoupled pin state.
#[derive(Debug)]
pub struct DriverRegion {
    /// Geometry.
    pub layout: RegionLayout,
    /// Owning address space.
    pub space: AsId,
    /// Tenant (process) every pinned page of this region is attributed
    /// to. Raw declares default to `ProcId(0)`; the engine declares
    /// through [`crate::Driver::declare_owned`] so each region carries
    /// its real owner for quota accounting and weighted-fair eviction.
    pub owner: ProcId,
    /// Physical frames of pages `0..pfns.len()` — the pin cursor.
    pfns: Vec<Pfn>,
    /// Stale watermark: when `Some(w)`, pages `w..pfns.len()` were hit by
    /// an MMU-notifier invalidation. Their frames are still *held* (pin
    /// accounting stays exact) but they are invisible to the protocol —
    /// [`DriverRegion::pinned_through`] stops at the watermark, so a stale
    /// access is an ordinary overlap miss. The frames are released in one
    /// batch by [`DriverRegion::release_stale`], either lazily at the next
    /// pin pass or by the driver's deferred drain.
    stale_from: Option<u64>,
    /// Active communications using this region.
    pub use_count: u32,
    /// Last time a communication used this region (pressure LRU).
    pub last_use: SimTime,
    /// A pin pass is currently queued/running on a core.
    pub pinning_in_progress: bool,
    /// Invalidation generation, bumped by the driver on every notifier hit.
    /// A pin pass stamps the generation it started under and restarts when
    /// a completed chunk observes a newer one — the simulated equivalent of
    /// `mmu_notifier_retry` making `get_user_pages` start over, which is
    /// what keeps an in-flight pass from resurrecting just-invalidated
    /// pages as if nothing happened.
    pub generation: u64,
}

impl DriverRegion {
    /// Declare a region (no pinning).
    ///
    /// # Panics
    /// Panics on a zero-length region; use [`DriverRegion::try_new`] for
    /// untrusted input.
    pub fn new(space: AsId, segments: &[Segment]) -> Self {
        Self::try_new(space, segments).expect("empty region")
    }

    /// Declare a region (no pinning), rejecting a zero-length segment
    /// vector instead of panicking.
    pub fn try_new(space: AsId, segments: &[Segment]) -> Result<Self, DeclareError> {
        Ok(DriverRegion {
            layout: RegionLayout::try_new(segments)?,
            space,
            owner: ProcId(0),
            pfns: Vec::new(),
            stale_from: None,
            use_count: 0,
            last_use: SimTime::ZERO,
            pinning_in_progress: false,
            generation: 0,
        })
    }

    /// Pages whose frames are attached (valid *and* stale) — what pin
    /// accounting counts, since stale frames are still held.
    pub fn pinned_pages(&self) -> u64 {
        self.pfns.len() as u64
    }

    /// Pages the protocol may use: the pin cursor up to the stale
    /// watermark. Equals [`DriverRegion::pinned_pages`] unless a notifier
    /// invalidation marked a suffix stale.
    pub fn valid_pages(&self) -> u64 {
        self.stale_from.unwrap_or(self.pfns.len() as u64)
    }

    /// Attached pages past the stale watermark, awaiting batched release.
    pub fn stale_pages(&self) -> u64 {
        self.pfns.len() as u64 - self.valid_pages()
    }

    /// True when every page is pinned and none of them is stale.
    pub fn fully_pinned(&self) -> bool {
        self.valid_pages() == self.layout.total_pages()
    }

    /// True when no page is pinned.
    pub fn unpinned(&self) -> bool {
        self.pfns.is_empty()
    }

    /// Pin up to `max_pages` further pages in region order, batching each
    /// contiguous virtual run into a single [`Memory::pin_user_pages_partial`]
    /// call — one pin syscall per run instead of one per page. A fully
    /// contiguous chunk costs exactly one call.
    ///
    /// On failure (unmapped page, OOM) the region's previously pinned pages
    /// are *released* and the error is surfaced — the paper's "declaration
    /// succeeds, pinning fails at communication time, request aborts".
    /// Pages a partially-successful batch pinned before the failure are
    /// part of that rollback, so the observable semantics are identical to
    /// [`DriverRegion::pin_next_chunk_per_page`].
    pub fn pin_next_chunk(
        &mut self,
        mem: &mut Memory,
        max_pages: u64,
    ) -> Result<PinProgress, MemError> {
        // A stale suffix is released before pinning forward: the cursor
        // rewinds to the watermark and the invalidated pages are re-pinned
        // against the *current* mappings (fresh frames after a remap).
        // This is what cancels a pending deferred unpin — by the time the
        // drain runs, the region has nothing stale left.
        self.release_stale(mem);
        let first_chunk = self.pfns.is_empty();
        let cursor = self.pfns.len() as u64;
        let end = (cursor + max_pages).min(self.layout.total_pages());
        let mut cow_events = Vec::new();
        let mut idx = cursor;
        while idx < end {
            let vpn = self.layout.vpn_of_page(idx);
            // Extend the run while the flattened page list stays virtually
            // contiguous. A page shared by two adjacent segments appears
            // twice with the same vpn, which breaks the run and gets its
            // own (double-pinning) call, exactly like the per-page loop.
            let mut run = 1u64;
            while idx + run < end && self.layout.vpn_of_page(idx + run).0 == vpn.0 + run {
                run += 1;
            }
            let mut partial = mem.pin_user_pages_partial(self.space, vpn.base(), run * PAGE_SIZE);
            self.pfns.append(&mut partial.pfns);
            cow_events.append(&mut partial.events);
            if let Some(e) = partial.error {
                self.unpin_all(mem);
                return Err(e);
            }
            idx += run;
        }
        Ok(PinProgress {
            pages_pinned: end - cursor,
            complete: end == self.layout.total_pages(),
            first_chunk,
            cow_events,
        })
    }

    /// The pre-batching pin loop: one [`Memory::pin_user_pages`] call per
    /// page. Kept as the differential-test oracle for the batched path
    /// (and reachable in the engine behind
    /// [`per_page_pin`](crate::config::OpenMxConfig::per_page_pin)); both
    /// must produce the same pins, cursor and failure/rollback behavior.
    pub fn pin_next_chunk_per_page(
        &mut self,
        mem: &mut Memory,
        max_pages: u64,
    ) -> Result<PinProgress, MemError> {
        self.release_stale(mem);
        let first_chunk = self.pfns.is_empty();
        let cursor = self.pfns.len() as u64;
        let end = (cursor + max_pages).min(self.layout.total_pages());
        let mut cow_events = Vec::new();
        for idx in cursor..end {
            let vpn = self.layout.vpn_of_page(idx);
            match mem.pin_user_pages(self.space, vpn.base(), PAGE_SIZE) {
                Ok((pfns, mut events)) => {
                    debug_assert_eq!(pfns.len(), 1);
                    self.pfns.push(pfns[0]);
                    cow_events.append(&mut events);
                }
                Err(e) => {
                    self.unpin_all(mem);
                    return Err(e);
                }
            }
        }
        Ok(PinProgress {
            pages_pinned: end - cursor,
            complete: end == self.layout.total_pages(),
            first_chunk,
            cow_events,
        })
    }

    /// The physical frames behind pages `0..pinned_pages()`, in page order
    /// (differential tests compare the batched and per-page pin paths).
    pub fn pinned_pfns(&self) -> &[Pfn] {
        &self.pfns
    }

    /// Release all pins. Returns the number of pages released.
    pub fn unpin_all(&mut self, mem: &mut Memory) -> u64 {
        let n = self.pfns.len() as u64;
        mem.unpin_pages(&self.pfns);
        self.pfns.clear();
        self.stale_from = None;
        self.pinning_in_progress = false;
        n
    }

    /// Mark every pinned page of `range` (and, conservatively, everything
    /// behind it) stale: invisible to the protocol, frames still held for
    /// a later batched release. Returns the number of *newly* staled
    /// pages — re-invalidating an already-stale suffix is free, which is
    /// how back-to-back trim events coalesce.
    ///
    /// The watermark is a suffix truncation on purpose: the protocol's pin
    /// cursor is a prefix, so invalidating page `w` invalidates the
    /// usefulness of everything at or after `w` anyway (the cursor can
    /// never skip a hole), and glibc-style trims hit the tail of a
    /// mapping. A middle-of-region invalidation therefore costs the tail
    /// too — correct, just conservative.
    ///
    /// A page inside `range` whose PTE still resolves to the frame this
    /// region pinned is *not* stale — its pin is what keeps the mapping
    /// in place. That is the COW-break case: the pin that broke the COW
    /// installed a fresh frame and reported an invalidation over the
    /// range, but the breaking region's own PTE already points at its
    /// pinned frame. Without the filter a region would stale itself on
    /// its own pin's events. An unmapped page (`resident_pfn` → `None`)
    /// always disagrees, so trims still stale the tail.
    pub fn mark_stale(&mut self, mem: &Memory, range: &VpnRange) -> u64 {
        let valid = self.valid_pages();
        for idx in 0..valid {
            let vpn = self.layout.vpn_of_page(idx);
            if range.contains(vpn)
                && mem.resident_pfn(self.space, vpn) != Some(self.pfns[idx as usize])
            {
                self.stale_from = Some(idx);
                return valid - idx;
            }
        }
        0
    }

    /// Release the stale suffix in one batched [`Memory`] call, rewinding
    /// the pin cursor to the watermark. Returns the pages released (0 when
    /// nothing was stale — the cancelled-unpin case).
    pub fn release_stale(&mut self, mem: &mut Memory) -> u64 {
        let valid = self.valid_pages() as usize;
        if valid == self.pfns.len() {
            self.stale_from = None;
            return 0;
        }
        let released = mem.unpin_pages_partial(&self.pfns[valid..]);
        self.pfns.truncate(valid);
        self.stale_from = None;
        released
    }

    /// Deliberately forget the stale watermark (fault injection only):
    /// pages a notifier invalidation marked stale become protocol-visible
    /// again even though their PTEs moved — exactly the lost-callback bug
    /// the simtest `StaleVisible` oracle exists to catch. Returns the
    /// pages exposed.
    #[doc(hidden)]
    pub fn forget_stale_watermark_for_test(&mut self) -> u64 {
        let exposed = self.stale_pages();
        self.stale_from = None;
        exposed
    }

    /// Eagerly unpin just the pages of `range`: mark stale, then release
    /// the suffix immediately. The partial-unpin fix for the old
    /// whole-region `unpin_all` on a partial-range invalidation — pages in
    /// front of the invalidated run stay pinned and accounted.
    pub fn unpin_range(&mut self, mem: &mut Memory, range: &VpnRange) -> u64 {
        self.mark_stale(mem, range);
        self.release_stale(mem)
    }

    /// True if bytes `[offset, offset+len)` lie entirely behind the pin
    /// cursor (safe for the driver to access). Stale pages do not count:
    /// an access past the watermark is an overlap miss, which is exactly
    /// the machinery (packet drop → re-request → repin) that makes
    /// deferred unpinning safe.
    pub fn pinned_through(&self, offset: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        // checked_add: offsets near u64::MAX must read as out of range,
        // not wrap around and pass the bounds check.
        let Some(end) = offset.checked_add(len) else {
            return false;
        };
        if end > self.layout.total_len() {
            return false;
        }
        let (_, last) = self.layout.page_index_span(offset, len);
        last < self.valid_pages()
    }

    /// Driver read of region bytes into `buf` (pull-reply construction on
    /// the send side). Fails if the range is not pinned yet.
    pub fn read(&self, mem: &Memory, offset: u64, buf: &mut [u8]) -> Result<(), RegionAccessError> {
        if !self.pinned_through(offset, buf.len() as u64) {
            return Err(RegionAccessError::NotPinned);
        }
        let mut cursor = 0usize;
        self.layout
            .for_each_chunk(offset, buf.len() as u64, |idx, _vpn, page_off, n| {
                let pfn = self.pfns[idx as usize];
                mem.read_phys(pfn, page_off, &mut buf[cursor..cursor + n as usize]);
                cursor += n as usize;
            });
        Ok(())
    }

    /// Driver write of `data` into region bytes (pull-reply landing on the
    /// receive side). Fails if the range is not pinned yet.
    pub fn write(
        &self,
        mem: &mut Memory,
        offset: u64,
        data: &[u8],
    ) -> Result<(), RegionAccessError> {
        if !self.pinned_through(offset, data.len() as u64) {
            return Err(RegionAccessError::NotPinned);
        }
        let mut cursor = 0usize;
        self.layout
            .for_each_chunk(offset, data.len() as u64, |idx, _vpn, page_off, n| {
                let pfn = self.pfns[idx as usize];
                mem.write_phys(pfn, page_off, &data[cursor..cursor + n as usize]);
                cursor += n as usize;
            });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::Prot;

    fn setup(pages: u64) -> (Memory, AsId, VirtAddr) {
        let mut mem = Memory::new(4096, 0);
        let space = mem.create_space();
        let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
        (mem, space, addr)
    }

    #[test]
    fn layout_geometry_contiguous() {
        let (_m, _s, addr) = setup(4);
        let l = RegionLayout::new(&[Segment {
            addr,
            len: 4 * PAGE_SIZE,
        }]);
        assert_eq!(l.total_len(), 4 * PAGE_SIZE);
        assert_eq!(l.total_pages(), 4);
        assert_eq!(l.vpn_of_page(0), addr.vpn());
        assert_eq!(l.vpn_of_page(3), Vpn(addr.vpn().0 + 3));
    }

    #[test]
    fn layout_unaligned_segment_spans_extra_page() {
        let (_m, _s, addr) = setup(4);
        // 2 pages of bytes starting mid-page covers 3 pages.
        let l = RegionLayout::new(&[Segment {
            addr: addr.add(100),
            len: 2 * PAGE_SIZE,
        }]);
        assert_eq!(l.total_pages(), 3);
        assert_eq!(l.vpn_of_page(0), addr.vpn());
    }

    #[test]
    fn layout_vectorial() {
        let (_m, _s, addr) = setup(10);
        let l = RegionLayout::new(&[
            Segment {
                addr,
                len: PAGE_SIZE,
            },
            Segment {
                addr: addr.add(5 * PAGE_SIZE),
                len: 2 * PAGE_SIZE,
            },
        ]);
        assert_eq!(l.total_len(), 3 * PAGE_SIZE);
        assert_eq!(l.total_pages(), 3);
        assert_eq!(l.vpn_of_page(1), Vpn(addr.vpn().0 + 5));
        // Byte PAGE_SIZE (first byte of segment 2) maps to page index 1.
        assert_eq!(l.page_index_span(PAGE_SIZE, 1), (1, 1));
        assert_eq!(l.page_index_span(0, 3 * PAGE_SIZE), (0, 2));
    }

    #[test]
    fn chunked_pinning_moves_cursor() {
        let (mut mem, space, addr) = setup(10);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 10 * PAGE_SIZE,
            }],
        );
        assert!(r.unpinned());
        let p = r.pin_next_chunk(&mut mem, 4).unwrap();
        assert_eq!(
            p,
            PinProgress {
                pages_pinned: 4,
                complete: false,
                first_chunk: true,
                cow_events: Vec::new(),
            }
        );
        assert_eq!(r.pinned_pages(), 4);
        assert!(r.pinned_through(0, 4 * PAGE_SIZE));
        assert!(!r.pinned_through(0, 4 * PAGE_SIZE + 1));
        let p = r.pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(
            p,
            PinProgress {
                pages_pinned: 6,
                complete: true,
                first_chunk: false,
                cow_events: Vec::new(),
            }
        );
        assert!(r.fully_pinned());
        assert_eq!(mem.frames().pinned_pages(), 10);
        assert_eq!(r.unpin_all(&mut mem), 10);
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip_through_pins() {
        let (mut mem, space, addr) = setup(4);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr: addr.add(64),
                len: 2 * PAGE_SIZE,
            }],
        );
        r.pin_next_chunk(&mut mem, 100).unwrap();
        let data: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        r.write(&mut mem, 0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        r.read(&mem, 0, &mut back).unwrap();
        assert_eq!(back, data);
        // And the application sees it through its own page tables.
        let mut app = vec![0u8; data.len()];
        mem.read(space, addr.add(64), &mut app).unwrap();
        assert_eq!(app, data);
    }

    #[test]
    fn access_beyond_cursor_is_overlap_miss() {
        let (mut mem, space, addr) = setup(8);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 8 * PAGE_SIZE,
            }],
        );
        r.pin_next_chunk(&mut mem, 2).unwrap();
        let mut buf = [0u8; 16];
        // Inside the cursor: fine.
        r.read(&mem, PAGE_SIZE, &mut buf).unwrap();
        // Beyond: miss.
        assert_eq!(
            r.read(&mem, 3 * PAGE_SIZE, &mut buf),
            Err(RegionAccessError::NotPinned)
        );
        assert_eq!(
            r.write(&mut mem, 7 * PAGE_SIZE, &[0; 8]),
            Err(RegionAccessError::NotPinned)
        );
        r.unpin_all(&mut mem);
    }

    #[test]
    fn pin_failure_on_unmapped_segment_aborts() {
        let mut mem = Memory::new(64, 0);
        let space = mem.create_space();
        // Declared over an address that was never mapped: declaration is
        // fine, pinning fails (paper §3.1).
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr: VirtAddr(0x4000_0000),
                len: 2 * PAGE_SIZE,
            }],
        );
        assert!(matches!(
            r.pin_next_chunk(&mut mem, 10),
            Err(MemError::BadAddress(_))
        ));
        assert!(r.unpinned());
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn partial_pin_failure_rolls_back_all_pins() {
        let mut mem = Memory::new(64, 0);
        let space = mem.create_space();
        let addr = mem.mmap(space, 2 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        // Region claims 4 pages but only 2 are mapped.
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 4 * PAGE_SIZE,
            }],
        );
        let p = r.pin_next_chunk(&mut mem, 2).unwrap();
        assert_eq!(p.pages_pinned, 2);
        assert!(r.pin_next_chunk(&mut mem, 2).is_err());
        assert!(r.unpinned(), "failed pin releases earlier pins");
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn intersects_notifier_ranges() {
        let (_m, _s, addr) = setup(10);
        let l = RegionLayout::new(&[
            Segment {
                addr,
                len: PAGE_SIZE,
            },
            Segment {
                addr: addr.add(5 * PAGE_SIZE),
                len: PAGE_SIZE,
            },
        ]);
        let v = addr.vpn().0;
        assert!(l.intersects(&VpnRange::new(Vpn(v), Vpn(v + 1))));
        assert!(!l.intersects(&VpnRange::new(Vpn(v + 1), Vpn(v + 5))));
        assert!(l.intersects(&VpnRange::new(Vpn(v + 5), Vpn(v + 6))));
    }

    #[test]
    fn zero_len_access_is_trivially_pinned() {
        let (_m, space, addr) = setup(2);
        let r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: PAGE_SIZE,
            }],
        );
        assert!(r.pinned_through(0, 0));
        assert!(!r.pinned_through(0, 1));
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_rejected() {
        RegionLayout::new(&[]);
    }

    #[test]
    fn try_new_rejects_zero_length_regions_gracefully() {
        let (_m, space, addr) = setup(2);
        assert!(matches!(
            RegionLayout::try_new(&[]),
            Err(DeclareError::EmptyRegion)
        ));
        // All-zero-length segments are just as empty as no segments.
        let zeros = [Segment { addr, len: 0 }, Segment { addr, len: 0 }];
        assert!(matches!(
            RegionLayout::try_new(&zeros),
            Err(DeclareError::EmptyRegion)
        ));
        assert!(DriverRegion::try_new(space, &zeros).is_err());
        // Zero-length segments mixed with real ones are dropped, not fatal.
        let mixed = [
            Segment { addr, len: 0 },
            Segment {
                addr,
                len: PAGE_SIZE,
            },
        ];
        let l = RegionLayout::try_new(&mixed).unwrap();
        assert_eq!(l.total_pages(), 1);
    }

    #[test]
    fn wrapping_offset_is_an_overlap_miss_not_a_panic() {
        // Regression: offset + len used to wrap past the bounds check for
        // offsets near u64::MAX, panicking (or indexing pfns out of range)
        // instead of reporting NotPinned.
        let (mut mem, space, addr) = setup(4);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 4 * PAGE_SIZE,
            }],
        );
        r.pin_next_chunk(&mut mem, 100).unwrap();
        assert!(r.fully_pinned());
        for offset in [u64::MAX, u64::MAX - 1, u64::MAX - 4 * PAGE_SIZE + 1] {
            assert!(!r.pinned_through(offset, 2), "offset {offset:#x} wrapped");
            let mut buf = [0u8; 16];
            assert_eq!(
                r.read(&mem, offset, &mut buf),
                Err(RegionAccessError::NotPinned)
            );
            assert_eq!(
                r.write(&mut mem, offset, &[0; 16]),
                Err(RegionAccessError::NotPinned)
            );
        }
        // A wrapping length is rejected the same way.
        let mut huge = vec![0u8; 32];
        assert_eq!(
            r.read(&mem, u64::MAX - 8, &mut huge),
            Err(RegionAccessError::NotPinned)
        );
        r.unpin_all(&mut mem);
    }

    /// Differential harness: drive the batched and per-page pin paths over
    /// identical twin memories and assert every observable agrees — pins,
    /// cursor, pin-call savings, failure and rollback.
    fn assert_batch_matches_per_page(
        build: impl Fn() -> (Memory, AsId),
        segments: &[Segment],
        chunks: &[u64],
    ) {
        let (mut mem_a, space_a) = build();
        let (mut mem_b, space_b) = build();
        let mut batched = DriverRegion::new(space_a, segments);
        let mut per_page = DriverRegion::new(space_b, segments);
        for &chunk in chunks {
            let calls_a = mem_a.pin_calls();
            let calls_b = mem_b.pin_calls();
            let ra = batched.pin_next_chunk(&mut mem_a, chunk);
            let rb = per_page.pin_next_chunk_per_page(&mut mem_b, chunk);
            assert_eq!(ra, rb, "progress/failure diverged at chunk {chunk}");
            assert_eq!(
                batched.pinned_pfns(),
                per_page.pinned_pfns(),
                "pfns diverged at chunk {chunk}"
            );
            assert_eq!(batched.pinned_pages(), per_page.pinned_pages());
            assert_eq!(
                mem_a.frames().pinned_pages(),
                mem_b.frames().pinned_pages(),
                "frame-pool pins diverged at chunk {chunk}"
            );
            if ra.is_ok() {
                let pinned = rb.unwrap().pages_pinned;
                assert!(
                    mem_a.pin_calls() - calls_a <= (mem_b.pin_calls() - calls_b).max(1),
                    "batching used more pin calls than per-page"
                );
                if pinned > 0 {
                    assert!(mem_b.pin_calls() - calls_b >= pinned);
                }
            } else {
                // Both must have rolled everything back.
                assert!(batched.unpinned() && per_page.unpinned());
                assert_eq!(mem_a.frames().pinned_pages(), 0);
                assert_eq!(mem_b.frames().pinned_pages(), 0);
                return;
            }
        }
    }

    #[test]
    fn batch_pin_matches_per_page_oracle_across_layouts() {
        // Deterministic xorshift so chunk sizes vary without an RNG dep.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..8u64 {
            let chunks: Vec<u64> = (0..6).map(|_| 1 + rng() % 7).collect();
            // Contiguous aligned region.
            assert_batch_matches_per_page(
                || {
                    let mut m = Memory::new(4096, 0);
                    let s = m.create_space();
                    m.mmap(s, 16 * PAGE_SIZE, Prot::ReadWrite).unwrap();
                    (m, s)
                },
                &[Segment {
                    addr: VirtAddr(0x10_0000),
                    len: 12 * PAGE_SIZE,
                }],
                &chunks,
            );
            // Unaligned segment (starts mid-page, spans an extra page).
            assert_batch_matches_per_page(
                || {
                    let mut m = Memory::new(4096, 0);
                    let s = m.create_space();
                    m.mmap(s, 16 * PAGE_SIZE, Prot::ReadWrite).unwrap();
                    (m, s)
                },
                &[Segment {
                    addr: VirtAddr(0x10_0000 + 100 + trial * 7),
                    len: 5 * PAGE_SIZE + 311,
                }],
                &chunks,
            );
            // Vectorial region with a gap (two runs per chunk boundary).
            assert_batch_matches_per_page(
                || {
                    let mut m = Memory::new(4096, 0);
                    let s = m.create_space();
                    m.mmap(s, 32 * PAGE_SIZE, Prot::ReadWrite).unwrap();
                    (m, s)
                },
                &[
                    Segment {
                        addr: VirtAddr(0x10_0000),
                        len: 3 * PAGE_SIZE,
                    },
                    Segment {
                        addr: VirtAddr(0x10_0000 + 10 * PAGE_SIZE + 64),
                        len: 4 * PAGE_SIZE,
                    },
                ],
                &chunks,
            );
            // Partially unmapped: pinning fails mid-batch, with partial
            // success inside the failing run; both paths must roll back.
            assert_batch_matches_per_page(
                || {
                    let mut m = Memory::new(4096, 0);
                    let s = m.create_space();
                    let a = m.mmap(s, 8 * PAGE_SIZE, Prot::ReadWrite).unwrap();
                    m.munmap(s, a.add(4 * PAGE_SIZE), PAGE_SIZE).unwrap();
                    (m, s)
                },
                &[Segment {
                    addr: VirtAddr(0x10_0000),
                    len: 8 * PAGE_SIZE,
                }],
                &[8],
            );
            // Out-of-frames: partial success against the frame pool.
            assert_batch_matches_per_page(
                || {
                    let mut m = Memory::new(3, 0);
                    let s = m.create_space();
                    m.mmap(s, 8 * PAGE_SIZE, Prot::ReadWrite).unwrap();
                    (m, s)
                },
                &[Segment {
                    addr: VirtAddr(0x10_0000),
                    len: 8 * PAGE_SIZE,
                }],
                &[2, 6],
            );
        }
    }

    #[test]
    fn unpin_range_releases_only_the_invalidated_pages() {
        // Regression for the tentpole bug: a partial-range invalidation
        // used to go through unpin_all and drop the whole region. Pin 16
        // pages, invalidate the last 2, and 14 must stay pinned with
        // every stat exact.
        let (mut mem, space, addr) = setup(16);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 16 * PAGE_SIZE,
            }],
        );
        r.pin_next_chunk(&mut mem, 100).unwrap();
        assert!(r.fully_pinned());
        assert_eq!(mem.frames().pinned_pages(), 16);

        let v = addr.vpn().0;
        let tail = VpnRange::new(Vpn(v + 14), Vpn(v + 16));
        // The invalidation's cause: the tail mapping is actually torn
        // down (PTE disagreement is what makes a page stale).
        mem.munmap(space, addr.add(14 * PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        let unpin_calls = mem.unpin_calls();
        assert_eq!(r.unpin_range(&mut mem, &tail), 2);
        assert_eq!(mem.unpin_calls(), unpin_calls + 1, "one batched call");
        assert_eq!(r.pinned_pages(), 14);
        assert_eq!(r.valid_pages(), 14);
        assert_eq!(r.stale_pages(), 0);
        assert_eq!(mem.frames().pinned_pages(), 14);
        assert!(!r.fully_pinned());
        assert!(r.pinned_through(0, 14 * PAGE_SIZE));
        assert!(!r.pinned_through(0, 14 * PAGE_SIZE + 1));

        // A disjoint range is a no-op.
        let gone = VpnRange::new(Vpn(v + 14), Vpn(v + 16));
        assert_eq!(r.unpin_range(&mut mem, &gone), 0);
        assert_eq!(mem.frames().pinned_pages(), 14);
        r.unpin_all(&mut mem);
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn mark_stale_defers_release_and_coalesces() {
        let (mut mem, space, addr) = setup(16);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 16 * PAGE_SIZE,
            }],
        );
        r.pin_next_chunk(&mut mem, 100).unwrap();
        let v = addr.vpn().0;

        // While the PTEs still point at the pinned frames, an
        // "invalidation" over them is a no-op: the pin itself is what
        // holds the mapping (the COW-break self-event case).
        assert_eq!(
            r.mark_stale(&mem, &VpnRange::new(Vpn(v + 12), Vpn(v + 14))),
            0
        );

        // Stale pages stay attached (accounting) but protocol-invisible.
        mem.munmap(space, addr.add(12 * PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        assert_eq!(
            r.mark_stale(&mem, &VpnRange::new(Vpn(v + 12), Vpn(v + 14))),
            4
        );
        assert_eq!(r.pinned_pages(), 16, "frames still held");
        assert_eq!(r.valid_pages(), 12);
        assert_eq!(mem.frames().pinned_pages(), 16);
        assert!(!r.pinned_through(0, 13 * PAGE_SIZE));
        assert!(r.pinned_through(0, 12 * PAGE_SIZE));

        // Re-invalidating inside the stale suffix coalesces to nothing.
        assert_eq!(
            r.mark_stale(&mem, &VpnRange::new(Vpn(v + 13), Vpn(v + 16))),
            0
        );
        // A lower hit extends the suffix by exactly the new pages.
        mem.munmap(space, addr.add(10 * PAGE_SIZE), PAGE_SIZE)
            .unwrap();
        assert_eq!(
            r.mark_stale(&mem, &VpnRange::new(Vpn(v + 10), Vpn(v + 11))),
            2
        );
        assert_eq!(r.valid_pages(), 10);

        // One batched release drains the whole suffix.
        let unpin_calls = mem.unpin_calls();
        assert_eq!(r.release_stale(&mut mem), 6);
        assert_eq!(mem.unpin_calls(), unpin_calls + 1);
        assert_eq!(r.pinned_pages(), 10);
        assert_eq!(mem.frames().pinned_pages(), 10);
        assert_eq!(r.release_stale(&mut mem), 0, "nothing stale twice");
        r.unpin_all(&mut mem);
    }

    #[test]
    fn repin_after_stale_suffix_sees_fresh_frames() {
        // The malloc-trim/realloc pattern: tail unmapped + remapped, then
        // the next pin pass rewinds to the watermark and pins the new
        // mapping — the pending deferred unpin has nothing left to do.
        let (mut mem, space, addr) = setup(8);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 8 * PAGE_SIZE,
            }],
        );
        r.pin_next_chunk(&mut mem, 100).unwrap();
        let old_tail = r.pinned_pfns()[6..].to_vec();
        let tail_addr = addr.add(6 * PAGE_SIZE);
        mem.munmap(space, tail_addr, 2 * PAGE_SIZE).unwrap();
        assert!(
            mem.frames().is_pinned(old_tail[0]),
            "pinned frames survive munmap until released"
        );
        let v = addr.vpn().0;
        assert_eq!(
            r.mark_stale(&mem, &VpnRange::new(Vpn(v + 6), Vpn(v + 8))),
            2
        );
        mem.mmap_at(space, tail_addr, 2 * PAGE_SIZE, Prot::ReadWrite)
            .unwrap();

        let p = r.pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(p.pages_pinned, 2, "cursor rewound to the watermark");
        assert!(r.fully_pinned());
        assert_eq!(r.stale_pages(), 0);
        assert_ne!(r.pinned_pfns()[6..], old_tail[..], "fresh frames");
        assert_eq!(mem.frames().pinned_pages(), 8);
        r.unpin_all(&mut mem);
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn batched_chunk_over_contiguous_pages_is_one_pin_call() {
        let (mut mem, space, addr) = setup(32);
        let mut r = DriverRegion::new(
            space,
            &[Segment {
                addr,
                len: 32 * PAGE_SIZE,
            }],
        );
        let before = mem.pin_calls();
        r.pin_next_chunk(&mut mem, 8).unwrap();
        assert_eq!(mem.pin_calls() - before, 1, "one call per contiguous chunk");
        r.pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(mem.pin_calls() - before, 2);
        assert!(r.fully_pinned());
        r.unpin_all(&mut mem);
    }
}
