//! Hand-rolled epoch-based reclamation for the concurrent driver — no
//! external deps, matching the PR 1 offline-build rule.
//!
//! The scheme is classic three-epoch EBR. A global epoch counter only
//! advances when every thread inside a critical section has announced the
//! current epoch, so an object retired in epoch `e` cannot still be
//! referenced once the global epoch reaches `e + 2`: any reader that could
//! hold a pre-retirement pointer pinned an epoch `≤ e`, and the two
//! advances in between each required that reader to have exited.
//!
//! Reclamation here is deliberately *two-stage* so the race harness can
//! turn use-after-free from undefined behavior into a counted oracle:
//! reclaiming an object poisons its liveness word (`LIVE → FREED`) and
//! moves it to a graveyard that stays allocated until the collector is
//! dropped (after every thread has joined). A reader that reaches an
//! object the collector believed unreachable therefore reads a well-formed
//! `FREED` word and bumps [`EpochStats::uaf_observed`] instead of
//! dereferencing freed memory — which is what lets the mutation self-tests
//! (skip the guard pin, skip the grace period) demonstrate that the oracle
//! actually catches the bugs it claims to, without the test itself being
//! unsound.
//!
//! Memory ordering is uniformly `SeqCst`. The structures this protects are
//! simulation-scale (hundreds of regions, not millions of ops/sec), so the
//! few fences saved by `Acquire`/`Release` pairs are not worth the proof
//! burden of justifying them.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;

/// Upper bound on simultaneously registered handles; registration beyond
/// this fails loudly. Fixed so the slot array never reallocates (a slot
/// scan must never race a table growth).
pub const MAX_EPOCH_THREADS: usize = 128;

/// What the collector needs from a retired object: a reader-guard count
/// (the quiescence oracle asserts it is zero at reclaim time) and a
/// poison hook flipping its liveness word.
pub trait Retired: Send {
    /// Readers currently inside this object (guard counter).
    fn readers(&self) -> u64;
    /// Flip the liveness word `LIVE → FREED`.
    fn poison(&self);
}

/// Fault-injection knobs for the mutation self-tests. Each one breaks the
/// reclamation protocol in a specific way the harness oracles must catch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochMutation {
    /// Guards no longer announce an epoch: readers become invisible to
    /// [`EpochCollector::collect`], which reclaims under their feet. The
    /// reader-side poison check (`uaf_observed`) must fire.
    SkipGuardPin,
    /// Retired objects are reclaimed immediately, ignoring the two-grace-
    /// period rule. Either the collector-side busy-reclaim oracle (guard
    /// counter nonzero at reclaim) or the reader-side poison check fires.
    ReclaimWithoutGrace,
}

/// Collector counters; every one is an oracle input for the race harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EpochStats {
    /// Global epoch value.
    pub epoch: u64,
    /// Outermost guard pins taken.
    pub guard_pins: u64,
    /// Objects handed to [`EpochCollector::retire`].
    pub retired: u64,
    /// Objects poisoned and moved to the graveyard.
    pub reclaimed: u64,
    /// Objects still awaiting their grace period.
    pub garbage_len: u64,
    /// Reclaims that found a nonzero reader-guard counter — a grace-period
    /// violation observed from the collector side. Must stay zero.
    pub busy_reclaims: u64,
    /// Readers that reached a poisoned object — a use-after-free observed
    /// from the reader side. Must stay zero.
    pub uaf_observed: u64,
}

#[repr(align(64))]
struct EpochSlot {
    /// `0` = not in a critical section, else announced epoch + 1.
    announced: AtomicU64,
    /// Slot claimed by a live [`EpochHandle`].
    claimed: AtomicBool,
}

/// A retired pointer parked until its grace period elapses. The raw
/// pointer (rather than `Box`) keeps ownership honest: concurrent readers
/// may still hold shared references, and materializing a `Box` would
/// assert unique access we do not have yet.
struct Parked<T>(NonNull<T>);
// Safety: the pointee is `Retired: Send` and the pointer is only
// dereferenced under the collector's own locks or after quiescence.
unsafe impl<T: Retired> Send for Parked<T> {}

/// The collector: global epoch, registration slots, garbage and graveyard.
pub struct EpochCollector<T: Retired> {
    global: AtomicU64,
    slots: Box<[EpochSlot]>,
    /// Retired objects with the epoch they were retired in.
    garbage: Mutex<Vec<(u64, Parked<T>)>>,
    /// Poisoned objects kept allocated until the collector drops, so a
    /// racing reader observes `FREED` instead of freed memory.
    graveyard: Mutex<Vec<Parked<T>>>,
    guard_pins: AtomicU64,
    retired: AtomicU64,
    reclaimed: AtomicU64,
    busy_reclaims: AtomicU64,
    uaf_observed: AtomicU64,
    mutation: Option<EpochMutation>,
}

impl<T: Retired> EpochCollector<T> {
    /// A collector with no fault injected.
    pub fn new() -> Self {
        Self::with_mutation(None)
    }

    /// A collector with a protocol fault injected (mutation self-tests
    /// only; the fault applies to every handle).
    pub fn with_mutation(mutation: Option<EpochMutation>) -> Self {
        let slots = (0..MAX_EPOCH_THREADS)
            .map(|_| EpochSlot {
                announced: AtomicU64::new(0),
                claimed: AtomicBool::new(false),
            })
            .collect();
        EpochCollector {
            global: AtomicU64::new(0),
            slots,
            garbage: Mutex::new(Vec::new()),
            graveyard: Mutex::new(Vec::new()),
            guard_pins: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            busy_reclaims: AtomicU64::new(0),
            uaf_observed: AtomicU64::new(0),
            mutation,
        }
    }

    /// Claim a registration slot for the calling thread. Each thread that
    /// enters critical sections needs its own handle; the handle releases
    /// the slot on drop.
    ///
    /// # Panics
    /// Panics when all [`MAX_EPOCH_THREADS`] slots are claimed.
    pub fn register(&self) -> EpochHandle<'_, T> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .claimed
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                return EpochHandle {
                    collector: self,
                    slot: i,
                    depth: std::cell::Cell::new(0),
                    _not_sync: std::marker::PhantomData,
                };
            }
        }
        panic!("epoch collector out of registration slots");
    }

    /// Advance the global epoch if every announced slot is current.
    fn try_advance(&self) -> bool {
        let e = self.global.load(SeqCst);
        for slot in self.slots.iter() {
            let a = slot.announced.load(SeqCst);
            if a != 0 && a - 1 != e {
                return false;
            }
        }
        self.global
            .compare_exchange(e, e + 1, SeqCst, SeqCst)
            .is_ok()
    }

    /// Park an unlinked object until its grace period elapses. The caller
    /// must already have removed every way for *new* readers to reach it;
    /// the epochs only protect readers that got in before the unlink.
    pub fn retire(&self, ptr: NonNull<T>) {
        let e = self.global.load(SeqCst);
        self.retired.fetch_add(1, SeqCst);
        self.garbage
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((e, Parked(ptr)));
    }

    /// Attempt one reclamation pass: nudge the epoch forward (twice, so a
    /// quiescent system ripens garbage in one call) and poison-and-bury
    /// everything whose grace period has elapsed. Returns the number of
    /// objects reclaimed.
    pub fn collect(&self) -> usize {
        let _ = self.try_advance();
        let _ = self.try_advance();
        let e = self.global.load(SeqCst);
        let drained = {
            let mut g = self.garbage.lock().unwrap_or_else(|p| p.into_inner());
            let split = std::mem::take(&mut *g);
            let (ripe, keep): (Vec<_>, Vec<_>) = split.into_iter().partition(|(re, _)| {
                self.mutation == Some(EpochMutation::ReclaimWithoutGrace) || re + 2 <= e
            });
            *g = keep;
            ripe
        };
        let n = drained.len();
        if n > 0 {
            let mut grave = self.graveyard.lock().unwrap_or_else(|p| p.into_inner());
            for (_, parked) in drained {
                // Safety: grace period elapsed (or a mutation deliberately
                // skipped it — which is exactly what these two oracles
                // exist to catch).
                let obj = unsafe { parked.0.as_ref() };
                if obj.readers() != 0 {
                    self.busy_reclaims.fetch_add(1, SeqCst);
                }
                obj.poison();
                grave.push(parked);
            }
            self.reclaimed.fetch_add(n as u64, SeqCst);
        }
        n
    }

    /// Reader-side oracle report: a guard-protected read reached a
    /// poisoned object.
    pub fn note_uaf_observed(&self) {
        self.uaf_observed.fetch_add(1, SeqCst);
    }

    /// Counter snapshot for the harness oracles.
    pub fn stats(&self) -> EpochStats {
        EpochStats {
            epoch: self.global.load(SeqCst),
            guard_pins: self.guard_pins.load(SeqCst),
            retired: self.retired.load(SeqCst),
            reclaimed: self.reclaimed.load(SeqCst),
            garbage_len: self.garbage.lock().unwrap_or_else(|p| p.into_inner()).len() as u64,
            busy_reclaims: self.busy_reclaims.load(SeqCst),
            uaf_observed: self.uaf_observed.load(SeqCst),
        }
    }

    /// Every quiescence violation the collector can see, as strings the
    /// harness asserts empty at join: unreleased guards, unripened
    /// garbage (call after a final [`EpochCollector::collect`] loop),
    /// busy reclaims, observed use-after-free, retire/reclaim imbalance.
    pub fn quiescent_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let a = slot.announced.load(SeqCst);
            if a != 0 {
                v.push(format!("slot {i} still announces epoch {}", a - 1));
            }
        }
        let s = self.stats();
        if s.garbage_len != 0 {
            v.push(format!("{} retired objects never reclaimed", s.garbage_len));
        }
        if s.retired != s.reclaimed + s.garbage_len {
            v.push(format!(
                "retire/reclaim imbalance: {} retired, {} reclaimed, {} parked",
                s.retired, s.reclaimed, s.garbage_len
            ));
        }
        if s.busy_reclaims != 0 {
            v.push(format!(
                "{} reclaims saw a live reader-guard counter",
                s.busy_reclaims
            ));
        }
        if s.uaf_observed != 0 {
            v.push(format!(
                "{} readers reached a poisoned object",
                s.uaf_observed
            ));
        }
        v
    }
}

impl<T: Retired> Default for EpochCollector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Retired> Drop for EpochCollector<T> {
    fn drop(&mut self) {
        // Threads are joined by now (handles borrow the collector, so none
        // can outlive it); the graveyard and any unripened garbage finally
        // free for real.
        let garbage = std::mem::take(&mut *self.garbage.lock().unwrap_or_else(|p| p.into_inner()));
        for (_, parked) in garbage {
            drop(unsafe { Box::from_raw(parked.0.as_ptr()) });
        }
        let grave = std::mem::take(&mut *self.graveyard.lock().unwrap_or_else(|p| p.into_inner()));
        for parked in grave {
            drop(unsafe { Box::from_raw(parked.0.as_ptr()) });
        }
    }
}

/// Per-thread registration. Not `Sync`: each thread registers its own.
pub struct EpochHandle<'c, T: Retired> {
    collector: &'c EpochCollector<T>,
    slot: usize,
    depth: std::cell::Cell<u32>,
    _not_sync: std::marker::PhantomData<*mut ()>,
}

impl<'c, T: Retired> EpochHandle<'c, T> {
    /// Enter a critical section. While the returned guard lives, no object
    /// unlinked *after* this call will be reclaimed. Reentrant; only the
    /// outermost guard announces.
    pub fn pin(&self) -> EpochGuard<'_, 'c, T> {
        if self.depth.get() == 0 {
            if self.collector.mutation != Some(EpochMutation::SkipGuardPin) {
                let slot = &self.collector.slots[self.slot];
                loop {
                    let e = self.collector.global.load(SeqCst);
                    slot.announced.store(e + 1, SeqCst);
                    if self.collector.global.load(SeqCst) == e {
                        break;
                    }
                }
            }
            self.collector.guard_pins.fetch_add(1, SeqCst);
        }
        self.depth.set(self.depth.get() + 1);
        EpochGuard { handle: self }
    }

    /// The collector this handle is registered with.
    pub fn collector(&self) -> &'c EpochCollector<T> {
        self.collector
    }
}

impl<T: Retired> Drop for EpochHandle<'_, T> {
    fn drop(&mut self) {
        let slot = &self.collector.slots[self.slot];
        slot.announced.store(0, SeqCst);
        slot.claimed.store(false, SeqCst);
    }
}

/// RAII critical-section token from [`EpochHandle::pin`].
pub struct EpochGuard<'h, 'c, T: Retired> {
    handle: &'h EpochHandle<'c, T>,
}

impl<T: Retired> Drop for EpochGuard<'_, '_, T> {
    fn drop(&mut self) {
        let d = self.handle.depth.get() - 1;
        self.handle.depth.set(d);
        if d == 0 {
            self.handle.collector.slots[self.handle.slot]
                .announced
                .store(0, SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Obj {
        live: AtomicU64,
        readers: AtomicU64,
    }
    impl Obj {
        fn boxed() -> NonNull<Obj> {
            NonNull::from(Box::leak(Box::new(Obj {
                live: AtomicU64::new(1),
                readers: AtomicU64::new(0),
            })))
        }
    }
    impl Retired for Obj {
        fn readers(&self) -> u64 {
            self.readers.load(SeqCst)
        }
        fn poison(&self) {
            self.live.store(0, SeqCst);
        }
    }

    #[test]
    fn retired_object_survives_active_guard() {
        let c = EpochCollector::<Obj>::new();
        let h = c.register();
        let ptr = Obj::boxed();
        let guard = h.pin();
        c.retire(ptr);
        for _ in 0..10 {
            c.collect();
        }
        // The guard pinned an epoch no later than the retire epoch, so the
        // grace period cannot elapse while it is held.
        assert_eq!(c.stats().reclaimed, 0, "reclaimed under an active guard");
        assert_eq!(unsafe { ptr.as_ref() }.live.load(SeqCst), 1);
        drop(guard);
        while c.collect() == 0 {}
        assert_eq!(c.stats().reclaimed, 1);
        assert_eq!(unsafe { ptr.as_ref() }.live.load(SeqCst), 0, "not poisoned");
        assert!(c.quiescent_violations().is_empty());
    }

    #[test]
    fn quiescent_collector_reclaims_in_one_call() {
        let c = EpochCollector::<Obj>::new();
        let h = c.register();
        drop(h.pin());
        c.retire(Obj::boxed());
        // Two advances per collect: one call ripens epoch-e garbage to e+2.
        assert_eq!(c.collect(), 1);
        assert!(c.quiescent_violations().is_empty());
    }

    #[test]
    fn reentrant_guard_counts_once() {
        let c = EpochCollector::<Obj>::new();
        let h = c.register();
        let g1 = h.pin();
        let g2 = h.pin();
        assert_eq!(c.stats().guard_pins, 1);
        drop(g1);
        // Inner guard still holds the announcement.
        c.retire(Obj::boxed());
        for _ in 0..4 {
            c.collect();
        }
        assert_eq!(c.stats().reclaimed, 0);
        drop(g2);
        while c.collect() == 0 {}
        assert_eq!(c.stats().reclaimed, 1);
    }

    #[test]
    fn handle_drop_releases_slot() {
        let c = EpochCollector::<Obj>::new();
        for _ in 0..(MAX_EPOCH_THREADS * 2) {
            drop(c.register());
        }
    }
}
