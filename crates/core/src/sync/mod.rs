//! Concurrency layer for the driver: hand-rolled epoch-based reclamation
//! ([`epoch`]), the sharded multi-thread driver ([`driver`]), and the
//! sharded region cache ([`cache`]). See DESIGN.md §16 and the race
//! harness in `crates/core/tests/concurrency.rs`.

pub mod cache;
pub mod driver;
pub mod epoch;

pub use cache::SharedRegionCache;
pub use driver::{ConcRegion, ConcurrentDriver, DriverMutation, RegionProbe};
pub use epoch::{
    EpochCollector, EpochGuard, EpochHandle, EpochMutation, EpochStats, Retired, MAX_EPOCH_THREADS,
};
