//! The concurrent driver: the single-threaded [`crate::Driver`]'s
//! region-table / notifier / deferred-unpin surface re-built for real
//! threads — ROADMAP item 5's "sharded read path + epoch-based
//! reclamation", proven by `crates/core/tests/concurrency.rs`.
//!
//! Structure:
//! - **Region table**: a fixed-capacity array of `AtomicPtr<ConcRegion>`.
//!   Lookups are a single atomic load under an epoch guard; descriptor ids
//!   are reused lowest-first through a mutexed free heap, exactly like the
//!   single-threaded driver, so replays allocate identical ids.
//! - **Interval index**: per-address-space [`SpaceIndex`] maps sharded by
//!   `hash(AsId)` under `RwLock` — notifier routing for different address
//!   spaces never contends, readers of the same space share the lock.
//! - **Reclamation**: undeclare unlinks the slot, then *retires* the
//!   region to the [`EpochCollector`]; a reader that loaded the pointer
//!   just before the unlink finishes its read under its epoch guard before
//!   the region is poisoned. Guard counters on every region are the
//!   quiescence oracle.
//! - **Lock poisoning**: a thread that panics while holding a shard or
//!   region lock poisons it; every lock acquisition here degrades to a
//!   counted graceful failure ([`ConcurrentDriver::lock_poisoned`])
//!   instead of propagating the panic.
//!
//! Counter semantics deliberately mirror [`crate::Driver`] line-for-line:
//! the harness replays a linearized op log into both drivers and asserts
//! the resulting [`DriverStats`] are bit-identical.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Mutex, RwLock};

use simmem::{AsId, InvalidateCause, MemError, Memory, NotifierEvent, VpnRange};

use super::epoch::{EpochCollector, EpochHandle, Retired};
use crate::driver::RegionId;
use crate::index::SpaceIndex;
use crate::obs::DriverStats;
use crate::region::{DeclareError, DriverRegion, PinProgress, RegionLayout, Segment};

/// Liveness word values for the poison oracle.
const MAGIC_LIVE: u64 = 0x4C49_5645_4C49_5645;
const MAGIC_FREED: u64 = 0xFEED_DEAD_FEED_DEAD;

/// A region as published to concurrent readers. Geometry (`layout`,
/// `space`) is immutable and readable lock-free; the mutable pin state
/// lives behind an internal `RwLock`; `valid_pages` and `generation` are
/// mirrored into atomics after every mutation so the hot-path cursor reads
/// ([`ConcurrentDriver::probe`], [`ConcurrentDriver::pinned_through`])
/// never take the lock at all.
pub struct ConcRegion {
    magic: AtomicU64,
    /// Reader-guard counter: incremented for the duration of every
    /// lock-free read. The epoch collector asserts it is zero when the
    /// region's grace period expires — the use-after-free oracle.
    readers: AtomicU64,
    space: AsId,
    layout: RegionLayout,
    valid_pages: AtomicU64,
    generation: AtomicU64,
    inner: RwLock<DriverRegion>,
}

impl ConcRegion {
    fn new(space: AsId, segments: &[Segment]) -> Result<Self, DeclareError> {
        let inner = DriverRegion::try_new(space, segments)?;
        Ok(ConcRegion {
            magic: AtomicU64::new(MAGIC_LIVE),
            readers: AtomicU64::new(0),
            space,
            layout: inner.layout.clone(),
            valid_pages: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            inner: RwLock::new(inner),
        })
    }

    fn is_live(&self) -> bool {
        self.magic.load(SeqCst) == MAGIC_LIVE
    }

    /// Re-mirror the lock-free cursor state from the locked inner region.
    /// Called while still holding the inner write lock, so mirrors can
    /// only lag a *concurrent* mutation, never the one just made.
    fn sync_mirrors(&self, inner: &DriverRegion) {
        self.valid_pages.store(inner.valid_pages(), SeqCst);
        self.generation.store(inner.generation, SeqCst);
    }
}

impl Retired for ConcRegion {
    fn readers(&self) -> u64 {
        self.readers.load(SeqCst)
    }
    fn poison(&self) {
        self.magic.store(MAGIC_FREED, SeqCst);
    }
}

/// Lock-free cursor snapshot from [`ConcurrentDriver::probe`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegionProbe {
    /// Owning address space.
    pub space: AsId,
    /// Total page count of the region's layout.
    pub total_pages: u64,
    /// Protocol-visible pin cursor (stale watermark applied).
    pub valid_pages: u64,
    /// Invalidation generation stamp.
    pub generation: u64,
}

/// Fault-injection knobs for the differential mutation self-tests: each
/// deletes one load-bearing step of the notifier protocol, and the
/// concurrent-vs-single-threaded replay (or the stale-page oracle) must
/// catch the divergence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DriverMutation {
    /// `handle_invalidate` marks pages stale but forgets the generation
    /// bump — an in-flight pin pass would resurrect dead mappings.
    SkipGenerationBump,
    /// `handle_invalidate` marks pages stale but forgets to park the
    /// region in the deferred queue — the stale suffix never drains.
    SkipDeferredQueue,
    /// `teardown_space` "frees" swept regions in place: the liveness word
    /// is poisoned while the slot is still published, skipping the unlink,
    /// the batched unpin and the collector's graveyard entirely. The next
    /// guarded reader observes the poisoned word (`uaf_observed`) and the
    /// dead tenant's pages stay pinned — both oracles must fire.
    TeardownDirectFree,
}

/// RAII wrapper for slot allocation parity with the single-threaded
/// driver: lowest free id first, then first-never-used.
struct SlotAlloc {
    free: BinaryHeap<Reverse<u32>>,
    high_water: u32,
}

/// The shared driver. All methods take `&self`; reader methods
/// additionally take the calling thread's [`EpochHandle`].
pub struct ConcurrentDriver {
    slots: Box<[AtomicPtr<ConcRegion>]>,
    alloc: Mutex<SlotAlloc>,
    shards: Box<[RwLock<HashMap<AsId, SpaceIndex>>]>,
    pending: Mutex<BTreeSet<u32>>,
    epoch: EpochCollector<ConcRegion>,
    declared: AtomicU64,
    // DriverStats mirror (pressure eviction stays engine-side and
    // single-threaded, so pressure_unpins / evict_lru_pops stay zero).
    notifier_events: AtomicU64,
    notifier_region_unpins: AtomicU64,
    notifier_index_candidates: AtomicU64,
    notifier_deferred: AtomicU64,
    notifier_cancelled: AtomicU64,
    notifier_drain_batches: AtomicU64,
    lock_poisoned: AtomicU64,
    mutation: Option<DriverMutation>,
}

impl ConcurrentDriver {
    /// A driver with room for `capacity` simultaneously declared regions
    /// and `shards` index shards. Capacity is fixed so the slot table
    /// never reallocates under readers.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_mutation(capacity, shards, None)
    }

    /// A driver with a protocol fault injected (mutation self-tests only).
    pub fn with_mutation(capacity: usize, shards: usize, mutation: Option<DriverMutation>) -> Self {
        assert!(capacity > 0 && shards > 0);
        let slots = (0..capacity)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        let shards = (0..shards).map(|_| RwLock::new(HashMap::new())).collect();
        ConcurrentDriver {
            slots,
            alloc: Mutex::new(SlotAlloc {
                free: BinaryHeap::new(),
                high_water: 0,
            }),
            shards,
            pending: Mutex::new(BTreeSet::new()),
            epoch: EpochCollector::new(),
            declared: AtomicU64::new(0),
            notifier_events: AtomicU64::new(0),
            notifier_region_unpins: AtomicU64::new(0),
            notifier_index_candidates: AtomicU64::new(0),
            notifier_deferred: AtomicU64::new(0),
            notifier_cancelled: AtomicU64::new(0),
            notifier_drain_batches: AtomicU64::new(0),
            lock_poisoned: AtomicU64::new(0),
            mutation,
        }
    }

    /// Register the calling thread with the reclamation scheme.
    pub fn register_thread(&self) -> EpochHandle<'_, ConcRegion> {
        self.epoch.register()
    }

    /// The reclamation collector (harness oracles read its stats).
    pub fn epoch_collector(&self) -> &EpochCollector<ConcRegion> {
        &self.epoch
    }

    fn shard_of(&self, space: AsId) -> &RwLock<HashMap<AsId, SpaceIndex>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        space.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    fn count_poison(&self) {
        self.lock_poisoned.fetch_add(1, SeqCst);
    }

    /// Times a poisoned lock was met with a graceful degraded answer
    /// instead of a panic.
    pub fn lock_poisoned(&self) -> u64 {
        self.lock_poisoned.load(SeqCst)
    }

    /// Load a live region pointer. Caller must hold an epoch guard for
    /// the returned reference's lifetime; the guard on the *handle* is
    /// what makes the `&self`-lifetime borrow sound, so this is private
    /// and every public caller pins first.
    fn load(&self, id: RegionId) -> Option<&ConcRegion> {
        let ptr = self.slots.get(id.0 as usize)?.load(SeqCst);
        if ptr.is_null() {
            return None;
        }
        // Safety: non-null slot pointers are valid until retired, and the
        // caller holds an epoch guard spanning this read.
        let r = unsafe { &*ptr };
        if !r.is_live() {
            // Collector reclaimed a region a guard should have protected.
            self.epoch.note_uaf_observed();
            return None;
        }
        Some(r)
    }

    /// Declare a region. Mirrors [`crate::Driver::declare`]: lowest free
    /// id, index insert per segment. Fails gracefully (not a panic) when
    /// the table is full or an allocator/shard lock is poisoned.
    pub fn declare(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        space: AsId,
        segments: &[Segment],
    ) -> Result<RegionId, DeclareError> {
        let _g = h.pin();
        let region = Box::new(ConcRegion::new(space, segments)?);
        let id = {
            let Ok(mut alloc) = self.alloc.lock() else {
                self.count_poison();
                return Err(DeclareError::DriverUnavailable);
            };
            if let Some(Reverse(idx)) = alloc.free.pop() {
                idx
            } else if (alloc.high_water as usize) < self.slots.len() {
                alloc.high_water += 1;
                alloc.high_water - 1
            } else {
                return Err(DeclareError::TableFull);
            }
        };
        let ptr = Box::into_raw(region);
        self.slots[id as usize].store(ptr, SeqCst);
        {
            let Ok(mut shard) = self.shard_of(space).write() else {
                // Unwind the publish so the table stays consistent.
                self.count_poison();
                self.slots[id as usize].store(std::ptr::null_mut(), SeqCst);
                self.epoch.retire(NonNull::new(ptr).expect("just boxed"));
                if let Ok(mut alloc) = self.alloc.lock() {
                    alloc.free.push(Reverse(id));
                }
                return Err(DeclareError::DriverUnavailable);
            };
            let idx = shard.entry(space).or_default();
            // Safety: just published, cannot be retired before the index
            // insert because only undeclare retires and nobody holds the id.
            let r = unsafe { &*ptr };
            for seg in r.layout.segments() {
                let pr = seg.page_range();
                idx.insert(pr.start.0, pr.end.0, id);
            }
        }
        self.declared.fetch_add(1, SeqCst);
        Ok(RegionId(id))
    }

    /// Undeclare: unlink the slot (new readers miss), remove the index
    /// entries (notifiers stop routing), release pins, then retire the
    /// region to the collector. Readers that got in before the unlink
    /// finish under their epoch guard. Returns pages released, or `None`
    /// if `id` is not declared (graceful, unlike the single-threaded
    /// driver's panic — two racing undeclares must not crash).
    pub fn undeclare(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        mem: &mut Memory,
        id: RegionId,
    ) -> Option<u64> {
        let _g = h.pin();
        let ptr = self
            .slots
            .get(id.0 as usize)?
            .swap(std::ptr::null_mut(), SeqCst);
        if ptr.is_null() {
            return None;
        }
        Some(self.reap_unlinked(mem, id, ptr))
    }

    /// Finish tearing down a slot the caller just unlinked (and therefore
    /// exclusively owns the teardown of): index removal, batched unpin,
    /// deferred-queue removal, slot free, retirement through the
    /// collector's graveyard. Caller must hold an epoch guard spanning the
    /// unlink and this call. Returns pages released.
    fn reap_unlinked(&self, mem: &mut Memory, id: RegionId, ptr: *mut ConcRegion) -> u64 {
        // Safety: the caller won the unlink race; the pointer stays valid
        // until retired below, under the caller's epoch guard.
        let r = unsafe { &*ptr };
        {
            match self.shard_of(r.space).write() {
                Ok(mut shard) => {
                    if let Some(idx) = shard.get_mut(&r.space) {
                        for seg in r.layout.segments() {
                            idx.remove(seg.page_range().start.0, id.0);
                        }
                    }
                }
                Err(_) => self.count_poison(),
            }
        }
        let released = match r.inner.write() {
            Ok(mut inner) => {
                let pages = inner.unpin_all(mem);
                r.sync_mirrors(&inner);
                pages
            }
            Err(_) => {
                self.count_poison();
                0
            }
        };
        match self.pending.lock() {
            Ok(mut p) => {
                p.remove(&id.0);
            }
            Err(_) => self.count_poison(),
        }
        if let Ok(mut alloc) = self.alloc.lock() {
            alloc.free.push(Reverse(id.0));
        } else {
            self.count_poison();
        }
        self.declared.fetch_sub(1, SeqCst);
        self.epoch
            .retire(NonNull::new(ptr).expect("non-null checked"));
        released
    }

    /// Crash-teardown of one tenant: undeclare every region belonging to
    /// `space` in one sweep — the concurrent twin of the single-threaded
    /// driver's `teardown_proc`. Each swept region goes through the exact
    /// undeclare sequence (unlink won by compare-exchange so a recycled
    /// slot is never reaped by mistake, index removal, batched unpin,
    /// deferred-queue removal, slot free, retirement through the
    /// collector's graveyard — never a direct free). Returns
    /// `(regions, pages)` reaped.
    pub fn teardown_space(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        mem: &mut Memory,
        space: AsId,
    ) -> (u64, u64) {
        let _g = h.pin();
        let mut regions = 0u64;
        let mut pages = 0u64;
        for i in 0..self.slots.len() {
            let ptr = self.slots[i].load(SeqCst);
            if ptr.is_null() {
                continue;
            }
            // Safety: non-null slot pointers stay valid until retired, and
            // the epoch guard spans the whole sweep.
            let r = unsafe { &*ptr };
            if !r.is_live() || r.space != space {
                continue;
            }
            if self.mutation == Some(DriverMutation::TeardownDirectFree) {
                // Injected bug: free the region in place — poisoned while
                // still published, with no unlink, no unpin, no grace
                // period. (The allocation itself is reclaimed by `Drop`,
                // keeping the self-test sound.)
                r.poison();
                continue;
            }
            // The compare-exchange guards against slot recycling: if a
            // racing undeclare-and-redeclare swapped in a different
            // region since the load above, leave it alone.
            if self.slots[i]
                .compare_exchange(ptr, std::ptr::null_mut(), SeqCst, SeqCst)
                .is_err()
            {
                continue;
            }
            pages += self.reap_unlinked(mem, RegionId(i as u32), ptr);
            regions += 1;
        }
        (regions, pages)
    }

    /// Advance a region's pin pass by up to `max_pages`. Returns `None`
    /// when `id` is no longer declared (the undeclare won) or the region
    /// lock is poisoned.
    pub fn pin_next_chunk(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        mem: &mut Memory,
        id: RegionId,
        max_pages: u64,
    ) -> Option<Result<PinProgress, MemError>> {
        let _g = h.pin();
        let r = self.load(id)?;
        let Ok(mut inner) = r.inner.write() else {
            self.count_poison();
            return None;
        };
        let out = inner.pin_next_chunk(mem, max_pages);
        r.sync_mirrors(&inner);
        Some(out)
    }

    /// Lock-free cursor snapshot: one slot load plus three atomic reads,
    /// no locks. The guard counter brackets the whole read — this is the
    /// probe the race harness hammers from reader threads.
    pub fn probe(&self, h: &EpochHandle<'_, ConcRegion>, id: RegionId) -> Option<RegionProbe> {
        let _g = h.pin();
        let r = self.load(id)?;
        r.readers.fetch_add(1, SeqCst);
        let out = if r.is_live() {
            Some(RegionProbe {
                space: r.space,
                total_pages: r.layout.total_pages(),
                valid_pages: r.valid_pages.load(SeqCst),
                generation: r.generation.load(SeqCst),
            })
        } else {
            self.epoch.note_uaf_observed();
            None
        };
        r.readers.fetch_sub(1, SeqCst);
        out
    }

    /// Lock-free [`DriverRegion::pinned_through`]: geometry from the
    /// immutable layout, cursor from the mirror atomic.
    pub fn pinned_through(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        id: RegionId,
        offset: u64,
        len: u64,
    ) -> Option<bool> {
        let _g = h.pin();
        let r = self.load(id)?;
        r.readers.fetch_add(1, SeqCst);
        let out = if len == 0 {
            true
        } else if let Some(end) = offset.checked_add(len) {
            if end > r.layout.total_len() {
                false
            } else {
                let (_, last) = r.layout.page_index_span(offset, len);
                last < r.valid_pages.load(SeqCst)
            }
        } else {
            false
        };
        r.readers.fetch_sub(1, SeqCst);
        Some(out)
    }

    /// Regions of `space` intersecting `range`, ascending by id — the
    /// shard's index under a *read* lock, then an exact layout
    /// confirmation per candidate through the epoch-guarded slot.
    pub fn regions_intersecting(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        space: AsId,
        range: &VpnRange,
    ) -> Vec<RegionId> {
        let _g = h.pin();
        let mut ids = BTreeSet::new();
        match self.shard_of(space).read() {
            Ok(shard) => {
                if let Some(idx) = shard.get(&space) {
                    idx.intersecting(range, &mut ids);
                }
            }
            Err(_) => self.count_poison(),
        }
        ids.into_iter()
            .map(RegionId)
            .filter(|&id| {
                self.load(id)
                    .is_some_and(|r| r.space == space && r.layout.intersects(range))
            })
            .collect()
    }

    /// Full-table-scan answer to [`ConcurrentDriver::regions_intersecting`]
    /// — the differential oracle, exactly like the single-threaded
    /// driver's naive twin.
    pub fn regions_intersecting_naive(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        space: AsId,
        range: &VpnRange,
    ) -> Vec<RegionId> {
        let _g = h.pin();
        let mut out = Vec::new();
        for i in 0..self.slots.len() {
            if let Some(r) = self.load(RegionId(i as u32)) {
                if r.space == space && r.layout.intersects(range) {
                    out.push(RegionId(i as u32));
                }
            }
        }
        out
    }

    /// MMU-notifier callback; semantics (and counters) mirror
    /// [`crate::Driver::handle_invalidate`] exactly: mark stale + bump
    /// generation + park in the deferred queue, except `Release` events
    /// which unpin eagerly.
    pub fn handle_invalidate(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        mem: &mut Memory,
        event: &NotifierEvent,
    ) -> Vec<(RegionId, u64)> {
        let _g = h.pin();
        self.notifier_events.fetch_add(1, SeqCst);
        if event.cause == InvalidateCause::Release {
            return self.invalidate_eagerly(h, mem, event);
        }
        let candidates = self.regions_intersecting(h, event.space, &event.range);
        self.notifier_index_candidates
            .fetch_add(candidates.len() as u64, SeqCst);
        let mut hit = Vec::new();
        for id in candidates {
            // The region can be undeclared between the index probe and
            // here; skip it like the single-threaded driver skips
            // unpinned regions.
            let Some(r) = self.load(id) else { continue };
            let Ok(mut inner) = r.inner.write() else {
                self.count_poison();
                continue;
            };
            if inner.unpinned() && !inner.pinning_in_progress {
                continue;
            }
            let staled = inner.mark_stale(&*mem, &event.range);
            if staled == 0 {
                continue;
            }
            if self.mutation != Some(DriverMutation::SkipGenerationBump) {
                inner.generation += 1;
            }
            r.sync_mirrors(&inner);
            drop(inner);
            if self.mutation != Some(DriverMutation::SkipDeferredQueue) {
                match self.pending.lock() {
                    Ok(mut p) => {
                        p.insert(id.0);
                    }
                    Err(_) => self.count_poison(),
                }
            }
            self.notifier_deferred.fetch_add(1, SeqCst);
            hit.push((id, staled));
        }
        hit
    }

    fn invalidate_eagerly(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        mem: &mut Memory,
        event: &NotifierEvent,
    ) -> Vec<(RegionId, u64)> {
        let candidates = self.regions_intersecting(h, event.space, &event.range);
        self.notifier_index_candidates
            .fetch_add(candidates.len() as u64, SeqCst);
        let mut hit = Vec::new();
        for id in candidates {
            let Some(r) = self.load(id) else { continue };
            let Ok(mut inner) = r.inner.write() else {
                self.count_poison();
                continue;
            };
            if inner.unpinned() && !inner.pinning_in_progress {
                continue;
            }
            inner.generation += 1;
            let pages = inner.unpin_all(mem);
            r.sync_mirrors(&inner);
            drop(inner);
            match self.pending.lock() {
                Ok(mut p) => {
                    p.remove(&id.0);
                }
                Err(_) => self.count_poison(),
            }
            self.notifier_region_unpins.fetch_add(1, SeqCst);
            hit.push((id, pages));
        }
        hit
    }

    /// True when regions await a deferred-unpin drain. A poisoned queue
    /// lock reads as "nothing pending" (counted).
    pub fn has_deferred(&self) -> bool {
        match self.pending.lock() {
            Ok(p) => !p.is_empty(),
            Err(_) => {
                self.count_poison();
                false
            }
        }
    }

    /// Drain the deferred-unpin queue; mirrors
    /// [`crate::Driver::drain_deferred`] including the released/cancelled
    /// split and its counters.
    pub fn drain_deferred(
        &self,
        h: &EpochHandle<'_, ConcRegion>,
        mem: &mut Memory,
    ) -> (Vec<(RegionId, u64)>, Vec<RegionId>) {
        let _g = h.pin();
        let mut released = Vec::new();
        let mut cancelled = Vec::new();
        let drained = match self.pending.lock() {
            Ok(mut p) => std::mem::take(&mut *p),
            Err(_) => {
                self.count_poison();
                return (released, cancelled);
            }
        };
        if drained.is_empty() {
            return (released, cancelled);
        }
        self.notifier_drain_batches.fetch_add(1, SeqCst);
        for idx in drained {
            let Some(r) = self.load(RegionId(idx)) else {
                continue;
            };
            let Ok(mut inner) = r.inner.write() else {
                self.count_poison();
                continue;
            };
            let pages = inner.release_stale(mem);
            r.sync_mirrors(&inner);
            if pages == 0 {
                self.notifier_cancelled.fetch_add(1, SeqCst);
                cancelled.push(RegionId(idx));
            } else {
                self.notifier_region_unpins.fetch_add(1, SeqCst);
                released.push((RegionId(idx), pages));
            }
        }
        (released, cancelled)
    }

    /// Regions currently declared.
    pub fn declared_count(&self) -> usize {
        self.declared.load(SeqCst) as usize
    }

    /// Sum of pinned pages across declared regions (join-time accounting
    /// oracle; takes every region's read lock, not a hot path).
    pub fn pinned_pages_total(&self, h: &EpochHandle<'_, ConcRegion>) -> u64 {
        let _g = h.pin();
        let mut total = 0;
        for i in 0..self.slots.len() {
            if let Some(r) = self.load(RegionId(i as u32)) {
                match r.inner.read() {
                    Ok(inner) => total += inner.pinned_pages(),
                    Err(_) => self.count_poison(),
                }
            }
        }
        total
    }

    /// Stale pages still attached across declared regions (must be zero
    /// after a final drain — the join-time deferred-queue oracle).
    pub fn stale_pages_total(&self, h: &EpochHandle<'_, ConcRegion>) -> u64 {
        let _g = h.pin();
        let mut total = 0;
        for i in 0..self.slots.len() {
            if let Some(r) = self.load(RegionId(i as u32)) {
                match r.inner.read() {
                    Ok(inner) => total += inner.stale_pages(),
                    Err(_) => self.count_poison(),
                }
            }
        }
        total
    }

    /// Per-region generation stamps, for the differential state check.
    pub fn region_generation(&self, h: &EpochHandle<'_, ConcRegion>, id: RegionId) -> Option<u64> {
        self.probe(h, id).map(|p| p.generation)
    }

    /// [`DriverStats`] mirror. Pressure eviction is engine-side and
    /// single-threaded, so its two counters are structurally zero here.
    pub fn stats(&self) -> DriverStats {
        DriverStats {
            pressure_unpinned_pages: 0,
            notifier_events: self.notifier_events.load(SeqCst),
            notifier_region_unpins: self.notifier_region_unpins.load(SeqCst),
            notifier_index_candidates: self.notifier_index_candidates.load(SeqCst),
            notifier_deferred: self.notifier_deferred.load(SeqCst),
            notifier_cancelled: self.notifier_cancelled.load(SeqCst),
            notifier_drain_batches: self.notifier_drain_batches.load(SeqCst),
            evict_lru_pops: 0,
        }
    }

    /// Deliberately poison the shard lock covering `space` (regression
    /// tests for the graceful-degradation paths only): a helper thread
    /// panics while holding the write lock, exactly the failure a buggy
    /// notifier callback would produce.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, space: AsId) {
        let lock = self.shard_of(space);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.write().unwrap();
            panic!("deliberate shard poison");
        }));
    }
}

// Safety: every interior-mutable field is an atomic, a lock, or the epoch
// collector (itself built from atomics and mutexes); raw region pointers
// are only dereferenced under epoch guards.
unsafe impl Send for ConcurrentDriver {}
unsafe impl Sync for ConcurrentDriver {}

impl Drop for ConcurrentDriver {
    fn drop(&mut self) {
        // Retire every still-declared region so the collector's drop (runs
        // right after, as a field) frees them; `&mut self` proves no
        // readers remain.
        for slot in self.slots.iter() {
            let ptr = slot.swap(std::ptr::null_mut(), SeqCst);
            if let Some(nn) = NonNull::new(ptr) {
                self.epoch.retire(nn);
            }
        }
    }
}
