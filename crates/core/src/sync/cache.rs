//! Sharded, thread-safe wrapper over the single-threaded
//! [`RegionCache`]: lookups for different descriptor keys hash to
//! different shards, so concurrent processes declaring disjoint buffers
//! never contend. Every shard lock degrades gracefully when poisoned —
//! a cache is advisory, so "poisoned shard" is just a (counted) miss.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;

use crate::cache::{CacheOutcome, RegionCache};
use crate::driver::RegionId;
use crate::obs::CacheStats;
use crate::region::Segment;

/// Thread-safe region cache: `RegionCache` shards keyed by segment hash.
pub struct SharedRegionCache {
    shards: Box<[Mutex<RegionCache>]>,
    lock_poisoned: AtomicU64,
}

impl SharedRegionCache {
    /// `capacity` is per shard; with the per-shard LRU this bounds total
    /// residency at `shards * capacity`, which is the same advisory
    /// guarantee the single-threaded cache gives the engine.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0);
        SharedRegionCache {
            shards: (0..shards)
                .map(|_| Mutex::new(RegionCache::new(capacity)))
                .collect(),
            lock_poisoned: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, segments: &[Segment]) -> &Mutex<RegionCache> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        segments.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Times a poisoned shard degraded to a miss / no-op.
    pub fn lock_poisoned(&self) -> u64 {
        self.lock_poisoned.load(SeqCst)
    }

    /// Look up a descriptor for exactly these segments; a poisoned shard
    /// is a counted miss.
    pub fn lookup(&self, segments: &[Segment]) -> CacheOutcome {
        match self.shard_of(segments).lock() {
            Ok(mut s) => s.lookup(segments),
            Err(_) => {
                self.lock_poisoned.fetch_add(1, SeqCst);
                CacheOutcome::Miss
            }
        }
    }

    /// Insert a freshly declared region; returns the id this insert
    /// displaced (replaced duplicate or LRU eviction), which the caller
    /// must undeclare — same contract as [`RegionCache::insert`].
    pub fn insert(&self, segments: Vec<Segment>, id: RegionId) -> Option<RegionId> {
        match self.shard_of(&segments).lock() {
            Ok(mut s) => s.insert(segments, id),
            Err(_) => {
                self.lock_poisoned.fetch_add(1, SeqCst);
                // The caller keeps ownership of `id`: with the shard
                // unusable the region is simply never cached.
                Some(id)
            }
        }
    }

    /// Drop `id` from whichever shard holds it (invalidation on
    /// undeclare). Returns whether an entry was removed.
    pub fn remove_by_id(&self, id: RegionId) -> bool {
        let mut removed = false;
        for shard in self.shards.iter() {
            match shard.lock() {
                Ok(mut s) => removed |= s.remove_by_id(id),
                Err(_) => {
                    self.lock_poisoned.fetch_add(1, SeqCst);
                }
            }
        }
        removed
    }

    /// Every cached descriptor id, ascending (invariant oracles).
    pub fn cached_ids(&self) -> Vec<RegionId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            match shard.lock() {
                Ok(s) => out.extend(s.cached_ids()),
                Err(_) => {
                    self.lock_poisoned.fetch_add(1, SeqCst);
                }
            }
        }
        out.sort();
        out
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(s) => s.len(),
                Err(_) => {
                    self.lock_poisoned.fetch_add(1, SeqCst);
                    0
                }
            })
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated hit/miss counters across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            match shard.lock() {
                Ok(s) => {
                    let st = s.stats();
                    total.hits += st.hits;
                    total.misses += st.misses;
                }
                Err(_) => {
                    self.lock_poisoned.fetch_add(1, SeqCst);
                }
            }
        }
        total
    }

    /// Deliberately poison the shard covering `segments` (regression
    /// tests for the graceful paths only).
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, segments: &[Segment]) {
        let lock = self.shard_of(segments);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.lock().unwrap();
            panic!("deliberate cache-shard poison");
        }));
    }
}
