//! The MXoE-flavoured wire protocol.
//!
//! Message types follow the paper's Figure 2 vocabulary: small messages go
//! *eager*; large messages do `rndv` → `pull` → `pull reply` → `notify`.
//! Frames carry their payload bytes (`Vec<u8>`), which is what lets the
//! test suite verify end-to-end data integrity through every pinning mode.
//!
//! Reliability: eager messages and notifies are acked explicitly; pull
//! replies are recovered by re-requesting missing frames (optimistically on
//! out-of-order arrival, else on the 1 s retransmission timeout) — §4.3.

use crate::endpoint::EndpointAddr;

/// Cluster-unique id of one message transfer (send request instance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// Cluster-unique causal-trace id of one end-to-end transfer.
///
/// Allocated once at send initiation and propagated through *every* wire
/// message of the transfer (rndv, pull req/reply, eager fragments, acks,
/// notifies) so that sender- and receiver-side trace records correlate
/// into a single cross-node span tree (`crate::obs::span`). Unlike
/// [`MsgId`] — which names protocol state — `XferId` exists purely for
/// observability and never keys any engine table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct XferId(pub u64);

/// Identifies one pull transaction (a large-message data phase).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PullId(pub u64);

/// One MXoE message as carried in an Ethernet frame.
#[derive(Clone, Debug)]
pub enum WireMsg {
    /// Small-message fragment, copied through the static eager buffers.
    Eager {
        /// Transfer this fragment belongs to.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Matching key.
        match_info: u64,
        /// Fragment index.
        frag: u32,
        /// Total fragments in the message.
        frag_count: u32,
        /// Total message length in bytes.
        total_len: u64,
        /// Byte offset of this fragment.
        offset: u64,
        /// Fragment payload.
        data: Vec<u8>,
    },
    /// Ack of a fully received eager message.
    EagerAck {
        /// The acked transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
    },
    /// Rendezvous request announcing a large message.
    Rndv {
        /// Transfer id.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Matching key.
        match_info: u64,
        /// Total message length.
        total_len: u64,
    },
    /// Pull request: the receiver asks for (a subset of) one block.
    /// The receiver drives the transfer: `xfer_len` is the (possibly
    /// truncated) total it wants, bounding every frame the sender cuts.
    PullReq {
        /// The pull transaction.
        pull: PullId,
        /// Transfer id (identifies the sender-side region).
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Block index within the transfer.
        block: u32,
        /// Bitmask of the frames of this block being requested.
        frame_mask: u64,
        /// Total bytes the receiver will accept.
        xfer_len: u64,
    },
    /// Pull reply: one frame of requested data.
    PullReply {
        /// The pull transaction.
        pull: PullId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Block index.
        block: u32,
        /// Frame index within the block.
        frame: u32,
        /// Byte offset of this frame within the whole message.
        offset: u64,
        /// Frame payload.
        data: Vec<u8>,
    },
    /// Transfer complete: receiver tells sender to release resources.
    Notify {
        /// The completed transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
    },
    /// Ack of a notify (lets the receiver release its retransmit state).
    NotifyAck {
        /// The acked transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
    },
}

impl WireMsg {
    /// Application payload bytes carried (for fabric accounting).
    pub fn payload_len(&self) -> u64 {
        match self {
            WireMsg::Eager { data, .. } | WireMsg::PullReply { data, .. } => data.len() as u64,
            _ => 0,
        }
    }

    /// Short tag for traces and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Eager { .. } => "eager",
            WireMsg::EagerAck { .. } => "eager_ack",
            WireMsg::Rndv { .. } => "rndv",
            WireMsg::PullReq { .. } => "pull_req",
            WireMsg::PullReply { .. } => "pull_reply",
            WireMsg::Notify { .. } => "notify",
            WireMsg::NotifyAck { .. } => "notify_ack",
        }
    }

    /// True for pure control messages (no data payload).
    pub fn is_control(&self) -> bool {
        self.payload_len() == 0
    }

    /// The causal-trace id — carried by every message variant, which is
    /// what lets the incarnation fence attribute a dropped stale frame to
    /// its transfer.
    pub fn xfer(&self) -> XferId {
        match self {
            WireMsg::Eager { xfer, .. }
            | WireMsg::EagerAck { xfer, .. }
            | WireMsg::Rndv { xfer, .. }
            | WireMsg::PullReq { xfer, .. }
            | WireMsg::PullReply { xfer, .. }
            | WireMsg::Notify { xfer, .. }
            | WireMsg::NotifyAck { xfer, .. } => *xfer,
        }
    }
}

/// A frame in flight: source, destination, and the message.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sending endpoint.
    pub src: EndpointAddr,
    /// Destination endpoint.
    pub dst: EndpointAddr,
    /// The MXoE message inside.
    pub msg: WireMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(p: u32) -> EndpointAddr {
        EndpointAddr {
            proc: crate::engine::ProcId(p),
            incarnation: 0,
        }
    }

    #[test]
    fn payload_accounting() {
        let e = WireMsg::Eager {
            msg: MsgId(1),
            xfer: XferId(1),
            match_info: 7,
            frag: 0,
            frag_count: 1,
            total_len: 5,
            offset: 0,
            data: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(e.payload_len(), 5);
        assert!(!e.is_control());
        let n = WireMsg::Notify {
            msg: MsgId(1),
            xfer: XferId(1),
        };
        assert_eq!(n.payload_len(), 0);
        assert!(n.is_control());
        assert_eq!(n.kind(), "notify");
    }

    #[test]
    fn frame_carries_endpoints() {
        let f = Frame {
            src: addr(0),
            dst: addr(1),
            msg: WireMsg::NotifyAck {
                msg: MsgId(9),
                xfer: XferId(9),
            },
        };
        assert_eq!(f.msg.kind(), "notify_ack");
        assert_ne!(f.src.proc, f.dst.proc);
    }
}
